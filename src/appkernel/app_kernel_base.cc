#include "src/appkernel/app_kernel_base.h"

#include <algorithm>

#include "src/base/log.h"

namespace ckapp {

using ck::CkApi;
using ck::HandlerAction;
using ckbase::CkStatus;
using cksim::PhysAddr;
using cksim::VirtAddr;

AppKernelBase::AppKernelBase(std::string name, uint32_t backing_pages,
                             cksim::Cycles backing_latency)
    : name_(std::move(name)),
      backing_(backing_pages, backing_latency),
      swap_next_(backing_pages) {}

AppKernelBase::~AppKernelBase() = default;

// ---------------------------------------------------------------------------
// Spaces and regions
// ---------------------------------------------------------------------------

uint32_t AppKernelBase::CreateSpace(CkApi& api, bool locked) {
  auto sp = std::make_unique<VSpace>();
  sp->cookie = spaces_.size();
  sp->locked = locked;
  ckbase::Result<ck::SpaceId> result = api.LoadSpace(sp->cookie, locked);
  sp->loaded = result.ok();
  if (result.ok()) {
    sp->ck_id = result.value();
  }
  spaces_.push_back(std::move(sp));
  return static_cast<uint32_t>(spaces_.size() - 1);
}

ck::SpaceId AppKernelBase::EnsureSpaceLoaded(CkApi& api, uint32_t index) {
  VSpace& sp = *spaces_[index];
  if (sp.loaded) {
    return sp.ck_id;
  }
  ckbase::Result<ck::SpaceId> result = api.LoadSpace(sp.cookie, sp.locked);
  if (result.ok()) {
    sp.ck_id = result.value();
    sp.loaded = true;
    // All mappings were written back with the space; they fault back in.
    for (auto& [vaddr, page] : sp.pages) {
      page.mapping_loaded = false;
    }
  }
  return sp.ck_id;
}

void AppKernelBase::DefineZeroRegion(uint32_t space_index, VirtAddr vaddr, uint32_t pages,
                                     bool writable) {
  VSpace& sp = *spaces_[space_index];
  for (uint32_t i = 0; i < pages; ++i) {
    PageRecord page;
    page.where = PageRecord::Where::kZeroFill;
    page.writable = writable;
    sp.pages[vaddr + i * cksim::kPageSize] = page;
  }
}

void AppKernelBase::DefineBackedRegion(uint32_t space_index, VirtAddr vaddr, uint32_t pages,
                                       uint32_t first_backing_page, bool writable) {
  VSpace& sp = *spaces_[space_index];
  for (uint32_t i = 0; i < pages; ++i) {
    PageRecord page;
    page.where = PageRecord::Where::kBacking;
    page.writable = writable;
    page.backing_page = first_backing_page + i;
    sp.pages[vaddr + i * cksim::kPageSize] = page;
  }
}

void AppKernelBase::DefineFrameRegion(uint32_t space_index, VirtAddr vaddr, uint32_t pages,
                                      PhysAddr first_frame, bool writable, bool message,
                                      uint32_t signal_thread, bool locked) {
  VSpace& sp = *spaces_[space_index];
  for (uint32_t i = 0; i < pages; ++i) {
    PageRecord page;
    page.where = PageRecord::Where::kResident;
    page.writable = writable;
    page.message = message;
    page.locked = locked;
    page.frame_owned = false;
    page.fixed_frame = first_frame + i * cksim::kPageSize;
    page.frame = page.fixed_frame;
    page.signal_thread = signal_thread;
    sp.pages[vaddr + i * cksim::kPageSize] = page;
  }
}

void AppKernelBase::DefineCowRegion(uint32_t space_index, VirtAddr vaddr, uint32_t pages,
                                    PhysAddr source_first_frame) {
  VSpace& sp = *spaces_[space_index];
  for (uint32_t i = 0; i < pages; ++i) {
    PageRecord page;
    page.where = PageRecord::Where::kZeroFill;  // replaced by the copy
    page.writable = true;
    page.cow_source = source_first_frame + i * cksim::kPageSize;
    sp.pages[vaddr + i * cksim::kPageSize] = page;
  }
}

uint32_t AppKernelBase::LoadProgramImage(uint32_t space_index, const ckisa::Program& program,
                                         bool writable) {
  uint32_t bytes = program.SizeBytes();
  uint32_t pages = (bytes + cksim::kPageSize - 1) / cksim::kPageSize;
  // Image pages allocate upward from 0; swap pages downward from the top.
  uint32_t first = image_next_;
  image_next_ += pages;
  for (uint32_t i = 0; i < pages; ++i) {
    uint32_t chunk = std::min<uint32_t>(cksim::kPageSize, bytes - i * cksim::kPageSize);
    backing_.WriteBytes(first + i, 0,
                        reinterpret_cast<const uint8_t*>(program.words.data()) +
                            static_cast<size_t>(i) * cksim::kPageSize,
                        chunk);
  }
  DefineBackedRegion(space_index, program.base, pages, first, writable);
  return first;
}

uint32_t AppKernelBase::AllocateSwapPage() {
  // Swap grows downward from the top of the backing store.
  --swap_next_;
  return swap_next_;
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

uint32_t AppKernelBase::CreateGuestThread(CkApi& api, const GuestThreadParams& params) {
  auto rec = std::make_unique<ThreadRec>();
  rec->cookie = threads_.size();
  rec->space_index = params.space_index;
  rec->priority = params.priority;
  rec->cpu_hint = params.cpu_hint;
  rec->locked = params.locked;
  rec->signal_handler = params.signal_handler;
  rec->exception_stack = params.exception_stack;
  rec->saved.pc = params.entry;
  rec->saved.regs[ckisa::kRegSp] = params.stack_top;
  threads_.push_back(std::move(rec));
  uint32_t index = static_cast<uint32_t>(threads_.size() - 1);
  EnsureThreadLoaded(api, index);
  return index;
}

uint32_t AppKernelBase::CreateNativeThread(CkApi& api, uint32_t space_index,
                                           ck::NativeProgram* program, uint8_t priority,
                                           bool locked, uint8_t cpu_hint) {
  auto rec = std::make_unique<ThreadRec>();
  rec->cookie = threads_.size();
  rec->space_index = space_index;
  rec->priority = priority;
  rec->cpu_hint = cpu_hint;
  rec->locked = locked;
  rec->native = program;
  rec->native_record = true;
  threads_.push_back(std::move(rec));
  uint32_t index = static_cast<uint32_t>(threads_.size() - 1);
  EnsureThreadLoaded(api, index);
  return index;
}

CkStatus AppKernelBase::EnsureThreadLoaded(CkApi& api, uint32_t index) {
  ThreadRec& rec = *threads_[index];
  if (rec.loaded) {
    return CkStatus::kOk;
  }
  if (rec.finished) {
    return CkStatus::kInvalidArgument;
  }
  // Retry-on-stale: the space identifier may have gone stale since the
  // record was saved; reload the space and retry the thread load (section 2).
  for (int attempt = 0; attempt < 2; ++attempt) {
    ck::ThreadSpec spec;
    spec.space = EnsureSpaceLoaded(api, rec.space_index);
    spec.cookie = rec.cookie;
    spec.priority = rec.priority;
    spec.cpu_hint = rec.cpu_hint;
    spec.locked = rec.locked;
    spec.start_blocked = rec.was_blocked;
    spec.vm = rec.saved;
    spec.native = rec.native;
    spec.signal_handler = rec.signal_handler;
    spec.exception_stack = rec.exception_stack;
    ckbase::Result<ck::ThreadId> result = api.LoadThread(spec);
    if (result.ok()) {
      rec.ck_id = result.value();
      rec.loaded = true;
      return CkStatus::kOk;
    }
    if (result.status() != CkStatus::kStale) {
      return result.status();
    }
    paging_stats_.stale_retries++;
    spaces_[rec.space_index]->loaded = false;  // force reload next attempt
  }
  return CkStatus::kStale;
}

void AppKernelBase::UnloadThreadByIndex(CkApi& api, uint32_t index) {
  ThreadRec& rec = *threads_[index];
  if (rec.loaded) {
    api.UnloadThread(rec.ck_id);  // fires OnThreadWriteback -> loaded=false
  }
}

bool AppKernelBase::AllThreadsFinished() const {
  for (const auto& rec : threads_) {
    if (!rec->finished) {
      return false;
    }
  }
  return !threads_.empty();
}

// ---------------------------------------------------------------------------
// Frames, eviction, replacement
// ---------------------------------------------------------------------------

VirtAddr AppKernelBase::ChooseVictim(VSpace& sp) {
  // Default FIFO over this space's resident pages; skip unevictable ones.
  for (VirtAddr vaddr : sp.resident_fifo) {
    PageRecord* page = sp.FindPage(vaddr);
    if (page != nullptr && page->frame_owned && !page->locked && !page->message) {
      return vaddr;
    }
  }
  return 0;
}

PhysAddr AppKernelBase::AllocateFrame(CkApi& api, VSpace& sp) {
  PhysAddr frame = frames_.Allocate();
  if (frame != 0) {
    return frame;
  }
  // Out of frames: evict. Try the faulting space first, then any space.
  VirtAddr victim = ChooseVictim(sp);
  if (victim == 0) {
    for (auto& other : spaces_) {
      victim = ChooseVictim(*other);
      if (victim != 0) {
        EvictPage(api, static_cast<uint32_t>(other->cookie), victim);
        return frames_.Allocate();
      }
    }
    return 0;
  }
  EvictPage(api, static_cast<uint32_t>(sp.cookie), victim);
  return frames_.Allocate();
}

void AppKernelBase::EvictPage(CkApi& api, uint32_t space_index, VirtAddr vaddr) {
  VSpace& sp = *spaces_[space_index];
  PageRecord* page = sp.FindPage(vaddr);
  if (page == nullptr || page->where != PageRecord::Where::kResident) {
    return;
  }
  if (page->mapping_loaded && sp.loaded) {
    // The writeback reports the modified bit; OnMappingWriteback records it.
    api.UnloadMapping(sp.ck_id, vaddr);
  }
  paging_stats_.evictions++;
  if (page->dirty) {
    if (page->backing_page == kNoBackingPage) {
      page->backing_page = AllocateSwapPage();
    }
    backing_.WritePage(api, page->frame, page->backing_page);
    paging_stats_.pages_out++;
    page->dirty = false;
  }
  if (page->frame_owned) {
    frames_.Release(page->frame);
  }
  page->frame = 0;
  page->where = page->backing_page != kNoBackingPage ? PageRecord::Where::kBacking
                                                     : PageRecord::Where::kZeroFill;
  auto it = std::find(sp.resident_fifo.begin(), sp.resident_fifo.end(), vaddr);
  if (it != sp.resident_fifo.end()) {
    sp.resident_fifo.erase(it);
  }
}

bool AppKernelBase::MaterializePage(CkApi& api, VSpace& sp, PageRecord& page,
                                    VirtAddr page_vaddr) {
  if (page.where == PageRecord::Where::kResident) {
    return true;
  }
  PhysAddr frame = AllocateFrame(api, sp);
  if (frame == 0) {
    return false;
  }
  if (page.where == PageRecord::Where::kZeroFill) {
    api.ZeroPage(frame);
    paging_stats_.zero_fills++;
  } else {
    backing_.ReadPage(api, page.backing_page, frame);
    paging_stats_.pages_in++;
  }
  page.frame = frame;
  page.where = PageRecord::Where::kResident;
  sp.resident_fifo.push_back(page_vaddr);
  return true;
}

bool AppKernelBase::ReadGuest(CkApi& api, uint32_t space_index, VirtAddr vaddr, void* out,
                              uint32_t len) {
  VSpace& sp = *spaces_[space_index];
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (len > 0) {
    VirtAddr page_vaddr = vaddr & ~static_cast<VirtAddr>(cksim::kPageOffsetMask);
    PageRecord* page = sp.FindPage(page_vaddr);
    if (page == nullptr || !MaterializePage(api, sp, *page, page_vaddr)) {
      return false;
    }
    uint32_t offset = vaddr - page_vaddr;
    uint32_t chunk = std::min(len, cksim::kPageSize - offset);
    if (api.ReadPhys(page->frame + offset, dst, chunk) != CkStatus::kOk) {
      return false;
    }
    vaddr += chunk;
    dst += chunk;
    len -= chunk;
  }
  return true;
}

bool AppKernelBase::WriteGuest(CkApi& api, uint32_t space_index, VirtAddr vaddr, const void* data,
                               uint32_t len) {
  VSpace& sp = *spaces_[space_index];
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (len > 0) {
    VirtAddr page_vaddr = vaddr & ~static_cast<VirtAddr>(cksim::kPageOffsetMask);
    PageRecord* page = sp.FindPage(page_vaddr);
    if (page == nullptr || !MaterializePage(api, sp, *page, page_vaddr)) {
      return false;
    }
    uint32_t offset = vaddr - page_vaddr;
    uint32_t chunk = std::min(len, cksim::kPageSize - offset);
    if (api.WritePhys(page->frame + offset, src, chunk) != CkStatus::kOk) {
      return false;
    }
    page->dirty = true;
    vaddr += chunk;
    src += chunk;
    len -= chunk;
  }
  return true;
}

CkStatus AppKernelBase::EnsureMappingLoaded(CkApi& api, uint32_t space_index, VirtAddr vaddr) {
  VSpace& sp = *spaces_[space_index];
  VirtAddr page_vaddr = vaddr & ~static_cast<VirtAddr>(cksim::kPageOffsetMask);
  PageRecord* page = sp.FindPage(page_vaddr);
  if (page == nullptr) {
    return CkStatus::kNotFound;
  }
  if (page->mapping_loaded && sp.loaded) {
    return CkStatus::kOk;
  }
  // Materialize contents if needed (synchronous path; callers are native
  // app-kernel threads, not faulting guests).
  if (page->where != PageRecord::Where::kResident) {
    PhysAddr frame = AllocateFrame(api, sp);
    if (frame == 0) {
      return CkStatus::kNoResources;
    }
    if (page->where == PageRecord::Where::kZeroFill) {
      api.ZeroPage(frame);
      paging_stats_.zero_fills++;
    } else {
      backing_.ReadPage(api, page->backing_page, frame);
      paging_stats_.pages_in++;
    }
    page->frame = frame;
    page->where = PageRecord::Where::kResident;
    sp.resident_fifo.push_back(page_vaddr);
  }
  ck::MappingSpec spec;
  spec.space = EnsureSpaceLoaded(api, space_index);
  spec.vaddr = page_vaddr;
  spec.paddr = page->frame;
  spec.flags.writable = page->writable && page->cow_source == 0;
  spec.flags.message = page->message;
  spec.locked = page->locked;
  if (page->signal_thread != kNoThread) {
    if (EnsureThreadLoaded(api, page->signal_thread) != CkStatus::kOk) {
      return CkStatus::kStale;
    }
    spec.signal_thread = threads_[page->signal_thread]->ck_id;
  }
  CkStatus status = api.LoadMapping(spec);
  if (status == CkStatus::kStale) {
    paging_stats_.stale_retries++;
    sp.loaded = false;
    spec.space = EnsureSpaceLoaded(api, space_index);
    status = api.LoadMapping(spec);
  }
  if (status == CkStatus::kOk) {
    page->mapping_loaded = true;
  }
  return status;
}

// ---------------------------------------------------------------------------
// Fault handling (Figure 2 step 3: navigate records, pick a frame, load)
// ---------------------------------------------------------------------------

HandlerAction AppKernelBase::OnIllegalAccess(const ck::FaultForward& fault, CkApi& api) {
  (void)api;
  paging_stats_.illegal_accesses++;
  CKLOG(kDebug) << name_ << ": illegal access at " << std::hex << fault.fault.address
                << " by thread cookie " << std::dec << fault.thread_cookie;
  return HandlerAction::kTerminate;
}

HandlerAction AppKernelBase::HandleFault(const ck::FaultForward& fault, CkApi& api) {
  paging_stats_.faults++;
  const cksim::CostModel& cost = api.kernel().machine().cost();
  api.Charge(cost.app_policy_lookup);

  if (fault.fault.type == cksim::FaultType::kConsistency) {
    return OnConsistencyFault(fault, api);
  }
  if (fault.fault.type == cksim::FaultType::kBadAlignment ||
      fault.fault.type == cksim::FaultType::kBadInstruction ||
      fault.fault.type == cksim::FaultType::kPrivilege) {
    return OnIllegalAccess(fault, api);
  }

  if (fault.space_cookie >= spaces_.size()) {
    return OnIllegalAccess(fault, api);
  }
  VSpace& sp = *spaces_[fault.space_cookie];
  VirtAddr page_vaddr = fault.fault.address & ~static_cast<VirtAddr>(cksim::kPageOffsetMask);
  PageRecord* page = sp.FindPage(page_vaddr);
  if (page == nullptr) {
    return OnIllegalAccess(fault, api);
  }

  bool want_write = fault.fault.access == cksim::Access::kWrite;
  bool cow_fault = page->cow_source != 0 && want_write;
  if (want_write && !page->writable && !cow_fault) {
    return OnIllegalAccess(fault, api);
  }

  return ResolvePageFault(fault, sp, *page, page_vaddr, api);
}

HandlerAction AppKernelBase::ResolvePageFault(const ck::FaultForward& fault, VSpace& sp,
                                              PageRecord& page, VirtAddr page_vaddr, CkApi& api) {
  const cksim::CostModel& cost = api.kernel().machine().cost();

  // Deferred copy resolution: allocate a private frame and copy the source.
  if (page.cow_source != 0 && fault.fault.access == cksim::Access::kWrite) {
    PhysAddr private_frame = AllocateFrame(api, sp);
    if (private_frame == 0) {
      return OnIllegalAccess(fault, api);
    }
    PhysAddr source = page.where == PageRecord::Where::kResident && page.frame != 0 &&
                              page.frame != page.cow_source
                          ? page.frame
                          : page.cow_source;
    if (page.mapping_loaded) {
      api.UnloadMapping(sp.ck_id, page_vaddr);
    }
    api.CopyPage(private_frame, source);
    page.frame = private_frame;
    page.frame_owned = true;
    page.fixed_frame = 0;
    page.cow_source = 0;
    page.where = PageRecord::Where::kResident;
    page.dirty = true;
    sp.resident_fifo.push_back(page_vaddr);
    paging_stats_.cow_copies++;
  }

  // Materialize the page contents if they are not resident.
  if (page.where != PageRecord::Where::kResident) {
    if (page.cow_source != 0) {
      // First (read) touch of a cow page: map the source read-only.
      page.frame = page.cow_source;
      page.frame_owned = false;
      page.where = PageRecord::Where::kResident;
    } else {
      PhysAddr frame = AllocateFrame(api, sp);
      if (frame == 0) {
        return OnIllegalAccess(fault, api);
      }
      if (page.where == PageRecord::Where::kZeroFill) {
        api.ZeroPage(frame);
        paging_stats_.zero_fills++;
        page.frame = frame;
        page.where = PageRecord::Where::kResident;
        sp.resident_fifo.push_back(page_vaddr);
      } else {  // kBacking
        paging_stats_.pages_in++;
        if (UseAsyncPaging()) {
          // Block the thread; complete the page-in after the disk latency.
          uint32_t space_index = static_cast<uint32_t>(sp.cookie);
          uint32_t backing_page = page.backing_page;
          // The waiter is identified by its stable record index, NOT its
          // Cache Kernel identifier: the descriptor may be reclaimed and
          // reloaded (new identifier) while the I/O is in flight.
          uint32_t waiter_index = static_cast<uint32_t>(fault.thread_cookie);
          if (waiter_index < threads_.size()) {
            threads_[waiter_index]->paging_blocked = true;
          }
          page.frame = frame;  // reserved; contents arrive with the event
          api.ScheduleAfter(backing_.latency(), [this, space_index, page_vaddr, backing_page,
                                                 frame, waiter_index](CkApi& later) {
            VSpace& vs = *spaces_[space_index];
            PageRecord* p = vs.FindPage(page_vaddr);
            if (p == nullptr || p->frame != frame) {
              return;  // the page was repurposed while the I/O was in flight
            }
            backing_.ReadPage(later, backing_page, frame, /*charge_latency=*/false);
            p->where = PageRecord::Where::kResident;
            vs.resident_fifo.push_back(page_vaddr);
            ck::MappingSpec spec;
            spec.space = EnsureSpaceLoaded(later, space_index);
            spec.vaddr = page_vaddr;
            spec.paddr = frame;
            spec.flags.writable = p->writable;
            spec.flags.message = p->message;
            spec.locked = p->locked;
            if (later.LoadMapping(spec) == CkStatus::kOk) {
              p->mapping_loaded = true;
            }
            if (waiter_index < threads_.size()) {
              ThreadRec& rec = *threads_[waiter_index];
              rec.paging_blocked = false;
              if (!rec.loaded && !rec.finished) {
                rec.was_blocked = true;
                EnsureThreadLoaded(later, waiter_index);
              }
              if (rec.loaded) {
                later.ResumeThread(rec.ck_id);
              }
            }
          });
          return HandlerAction::kBlock;
        }
        backing_.ReadPage(api, page.backing_page, frame);
        page.frame = frame;
        page.where = PageRecord::Where::kResident;
        sp.resident_fifo.push_back(page_vaddr);
      }
    }
  }

  // Load the mapping descriptor and restart the thread in one call
  // (the optimized combined operation, section 2.1).
  ck::MappingSpec spec;
  spec.space = sp.ck_id;
  spec.vaddr = page_vaddr;
  spec.paddr = page.frame;
  spec.flags.writable = page.writable && page.cow_source == 0;
  spec.flags.message = page.message;
  spec.flags.copy_on_write = page.cow_source != 0;
  spec.locked = page.locked;
  if (page.signal_thread != kNoThread) {
    if (EnsureThreadLoaded(api, page.signal_thread) != CkStatus::kOk) {
      return OnIllegalAccess(fault, api);
    }
    spec.signal_thread = threads_[page.signal_thread]->ck_id;
  }
  if (page.cow_source != 0) {
    spec.cow_source = page.cow_source;
  }

  api.Charge(cost.app_handler_base);
  CkStatus status = api.LoadMappingAndResume(spec, fault.thread);
  if (status == CkStatus::kStale) {
    // The space descriptor was written back while we worked; reload, retry.
    paging_stats_.stale_retries++;
    sp.loaded = false;
    spec.space = EnsureSpaceLoaded(api, static_cast<uint32_t>(sp.cookie));
    status = api.LoadMappingAndResume(spec, fault.thread);
  }
  if (status != CkStatus::kOk) {
    return OnIllegalAccess(fault, api);
  }
  page.mapping_loaded = true;
  return HandlerAction::kResumed;
}

ck::TrapAction AppKernelBase::HandleTrap(const ck::TrapForward& trap, CkApi& api) {
  (void)trap;
  (void)api;
  // No syscall interface by default; subclasses (the UNIX emulator) provide
  // one. Unknown traps terminate the thread.
  ck::TrapAction action;
  action.action = HandlerAction::kTerminate;
  return action;
}

// ---------------------------------------------------------------------------
// Writeback channel
// ---------------------------------------------------------------------------

void AppKernelBase::OnMappingWriteback(const ck::MappingWriteback& record, CkApi& api) {
  (void)api;
  if (record.space_cookie >= spaces_.size()) {
    return;
  }
  VSpace& sp = *spaces_[record.space_cookie];
  PageRecord* page = sp.FindPage(record.vaddr);
  if (page == nullptr) {
    return;
  }
  // The mapping descriptor left the Cache Kernel; the frame and its contents
  // remain ours. "The application kernel uses this writeback information to
  // update its records about the state of this page" -- in particular the
  // modified bit decides whether backing store must be refreshed before the
  // frame is reused (section 2.1).
  page->mapping_loaded = false;
  page->dirty = page->dirty || record.modified;
}

void AppKernelBase::OnThreadWriteback(const ck::ThreadWriteback& record, CkApi& api) {
  (void)api;
  if (record.cookie >= threads_.size()) {
    return;
  }
  ThreadRec& rec = *threads_[record.cookie];
  rec.loaded = false;
  rec.saved = record.context;
  rec.was_blocked = record.was_blocked;
  rec.total_consumed += record.cpu_consumed;
}

void AppKernelBase::OnSpaceWriteback(const ck::SpaceWriteback& record, CkApi& api) {
  (void)api;
  if (record.cookie >= spaces_.size()) {
    return;
  }
  VSpace& sp = *spaces_[record.cookie];
  sp.loaded = false;
  for (auto& [vaddr, page] : sp.pages) {
    page.mapping_loaded = false;
  }
}

void AppKernelBase::CaptureExtra(ckckpt::Writer& w, CkApi& api) {
  (void)w;
  (void)api;
}

void AppKernelBase::RestoreExtra(ckckpt::Reader& r, CkApi& api) {
  (void)r;
  (void)api;
}

void AppKernelBase::OnThreadHalt(ck::ThreadId thread, uint64_t cookie, CkApi& api) {
  if (cookie >= threads_.size()) {
    return;
  }
  ThreadRec& rec = *threads_[cookie];
  rec.finished = true;
  ++halted_threads_;
  OnGuestFinished(static_cast<uint32_t>(cookie), api);
  if (rec.loaded) {
    api.UnloadThread(thread);
  }
}

}  // namespace ckapp

// On-demand thread loading via signal redirection (sections 2.2, 2.3).
//
// "A thread that blocks waiting on a memory-based messaging signal can be
// unloaded by its application kernel after it adds mappings that redirect
// the signal to one of the application kernel's internal (real-time)
// threads. The application-kernel thread then reloads the thread when it
// receives a redirected signal for this unloaded thread. This technique
// provides on-demand loading of threads similar to the on-demand loading of
// page mappings that occurs with page faults."
//
// A SignalRedirector is that internal thread: Park() unloads a waiting
// thread and re-registers its message page's signals to the redirector;
// when a signal arrives, the redirector reloads the parked thread, restores
// the direct registration, and hands the signal over. The parked thread
// consumes NO Cache Kernel descriptors while it waits.

#ifndef SRC_APPKERNEL_SIGNAL_REDIRECT_H_
#define SRC_APPKERNEL_SIGNAL_REDIRECT_H_

#include <map>

#include "src/appkernel/app_kernel_base.h"

namespace ckapp {

class SignalRedirector : public ck::NativeProgram {
 public:
  explicit SignalRedirector(AppKernelBase& kernel) : kernel_(kernel) {}

  // Create the redirector's own (locked) thread in `space_index`. Call once.
  void Start(ck::CkApi& api, uint32_t space_index, uint8_t priority = 26) {
    self_index_ = kernel_.CreateNativeThread(api, space_index, this, priority, /*locked=*/true);
  }
  uint32_t thread_index() const { return self_index_; }

  // Park `target_thread` (an index into the kernel's thread table) that is
  // waiting on signals for `page_vaddr` in `space_index`: redirect the
  // page's signals here, then unload the thread descriptor entirely.
  ckbase::CkStatus Park(ck::CkApi& api, uint32_t space_index, cksim::VirtAddr page_vaddr,
                        uint32_t target_thread);

  // A redirected signal arrived: reload the parked thread, restore its
  // direct registration, and deliver the pending message address.
  void OnSignal(cksim::VirtAddr message_addr, ck::NativeCtx& ctx) override;

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    (void)ctx;
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }

  uint64_t reloads() const { return reloads_; }
  uint32_t parked_count() const { return static_cast<uint32_t>(parked_.size()); }

 private:
  struct Parked {
    uint32_t space_index = 0;
    uint32_t target_thread = 0;
  };

  // Re-point a page's signal registration by reloading its mapping with the
  // new signal thread (the registration is part of the mapping descriptor).
  ckbase::CkStatus Repoint(ck::CkApi& api, uint32_t space_index, cksim::VirtAddr page_vaddr,
                           uint32_t signal_thread);

  AppKernelBase& kernel_;
  uint32_t self_index_ = 0;
  std::map<cksim::VirtAddr, Parked> parked_;  // by page-aligned vaddr
  uint64_t reloads_ = 0;
};

}  // namespace ckapp

#endif  // SRC_APPKERNEL_SIGNAL_REDIRECT_H_

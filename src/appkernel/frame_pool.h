// Application-kernel physical frame pool.
//
// The SRM grants each application kernel page groups of physical memory
// (section 4.3); the kernel then suballocates frames internally. Because the
// application kernel selects the physical page frame for every mapping it
// loads, "it fully controls physical page selection, the page replacement
// policy and paging I/O" (section 1) -- this pool is where that control
// lives.

#ifndef SRC_APPKERNEL_FRAME_POOL_H_
#define SRC_APPKERNEL_FRAME_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "src/sim/types.h"

namespace ckapp {

class FramePool {
 public:
  // Observer for allocation/release, bound by the SRM at Launch so the Cache
  // Kernel's tiered-memory layer (docs/TIERING.md) can track pool-held frames
  // -- file-cache pages and paging backing frames then participate in
  // demotion instead of pinning DRAM. Unbound (the default) costs one
  // null test per event.
  using TierHook = std::function<void(cksim::PhysAddr frame, bool allocated)>;
  void BindTierHook(TierHook hook) { tier_hook_ = std::move(hook); }
  // Add every frame of a granted page group.
  void AddPageGroup(uint32_t group_index) {
    cksim::PhysAddr base = group_index * cksim::kPageGroupBytes;
    for (uint32_t i = 0; i < cksim::kPagesPerGroup; ++i) {
      free_.push_back(base + i * cksim::kPageSize);
      ++total_;
    }
  }

  void AddFrame(cksim::PhysAddr frame) {
    free_.push_back(frame);
    ++total_;
  }

  // 0 when empty (the caller evicts a resident page and retries).
  cksim::PhysAddr Allocate() {
    if (free_.empty()) {
      return 0;
    }
    cksim::PhysAddr frame = free_.front();
    free_.pop_front();
    if (tier_hook_) {
      tier_hook_(frame, /*allocated=*/true);
    }
    return frame;
  }

  void Release(cksim::PhysAddr frame) {
    free_.push_back(frame);
    if (tier_hook_) {
      tier_hook_(frame, /*allocated=*/false);
    }
  }

  uint32_t free_count() const { return static_cast<uint32_t>(free_.size()); }
  uint32_t total_count() const { return total_; }

 private:
  std::deque<cksim::PhysAddr> free_;
  uint32_t total_ = 0;
  TierHook tier_hook_;
};

}  // namespace ckapp

#endif  // SRC_APPKERNEL_FRAME_POOL_H_

// Breakpoint debugging of guest threads (section 2.3).
//
// "A thread being debugged is also unloaded when it hits a breakpoint. Its
// state can then be examined and reloaded on user request." The debugger is
// application-kernel code: it plants breakpoints by overwriting the target
// instruction with a trap (the classic technique), and the owning kernel's
// trap handler routes the breakpoint trap here. On a hit the thread's
// descriptor leaves the Cache Kernel entirely -- the saved context in the
// application kernel's ThreadRec IS the debugger's view of the registers.

#ifndef SRC_APPKERNEL_DEBUGGER_H_
#define SRC_APPKERNEL_DEBUGGER_H_

#include <map>

#include "src/appkernel/app_kernel_base.h"
#include "src/isa/isa.h"

namespace ckapp {

// The trap number breakpoints compile to. Application kernels route it to
// Debugger::OnBreakpointTrap from their HandleTrap.
inline constexpr uint16_t kBreakpointTrap = 30;

class Debugger {
 public:
  explicit Debugger(AppKernelBase& kernel) : kernel_(kernel) {}

  // Plant a breakpoint at `vaddr` in `space_index` (word-aligned). The
  // original instruction is saved and replaced by a breakpoint trap.
  ckbase::CkStatus SetBreakpoint(ck::CkApi& api, uint32_t space_index, cksim::VirtAddr vaddr);
  ckbase::CkStatus ClearBreakpoint(ck::CkApi& api, uint32_t space_index, cksim::VirtAddr vaddr);

  // Call from the owning kernel's HandleTrap for kBreakpointTrap. Unloads
  // the thread (post-examination state lives in its ThreadRec) and rewinds
  // the saved pc to the breakpoint address. Returns the action to return
  // from the trap handler.
  ck::HandlerAction OnBreakpointTrap(const ck::TrapForward& trap, ck::CkApi& api);

  // Examine a stopped thread's registers (the writeback context).
  const ckisa::VmContext& Examine(uint32_t thread_index) {
    return kernel_.thread(thread_index).saved;
  }
  bool IsStopped(uint32_t thread_index) const {
    return stopped_.count(thread_index) != 0;
  }

  // Resume a stopped thread: restore the original instruction, reload the
  // descriptor, optionally re-arming the breakpoint after one step is NOT
  // supported (single-shot breakpoints keep the machinery honest).
  ckbase::CkStatus Resume(ck::CkApi& api, uint32_t thread_index);

  uint64_t hits() const { return hits_; }

 private:
  struct Planted {
    uint32_t space_index;
    uint32_t original_word;
  };

  // Read/write one instruction word in guest memory.
  ckbase::CkStatus PatchWord(ck::CkApi& api, uint32_t space_index, cksim::VirtAddr vaddr,
                             uint32_t word, uint32_t* old_word);

  AppKernelBase& kernel_;
  std::map<std::pair<uint32_t, cksim::VirtAddr>, Planted> breakpoints_;
  std::map<uint32_t, cksim::VirtAddr> stopped_;  // thread index -> bp vaddr
  uint64_t hits_ = 0;
};

}  // namespace ckapp

#endif  // SRC_APPKERNEL_DEBUGGER_H_

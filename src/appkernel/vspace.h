// Application-kernel backing records for spaces, pages and threads.
//
// These are the "descriptors maintained by the application kernel" that back
// the Cache Kernel's cache: the full page state of every virtual page
// (where its contents live, whether they are dirty) and the saved context of
// every thread, loaded or not. Cache Kernel identifiers are transient --
// "application kernels do not use the Cache Kernel object identifiers except
// across this interface because a new identifier is assigned each time an
// object is loaded" -- so each record keeps its own stable index (the cookie
// passed at load time) and the current identifier separately.

#ifndef SRC_APPKERNEL_VSPACE_H_
#define SRC_APPKERNEL_VSPACE_H_

#include <cstdint>
#include <deque>
#include <map>

#include "src/ck/cache_kernel.h"
#include "src/isa/interpreter.h"
#include "src/sim/types.h"

namespace ckapp {

inline constexpr uint32_t kNoThread = 0xffffffffu;
inline constexpr uint32_t kNoBackingPage = 0xffffffffu;

struct PageRecord {
  enum class Where : uint8_t {
    kZeroFill,  // first touch gets a zeroed frame
    kBacking,   // contents live in the backing store
    kResident,  // contents live in a physical frame (mapping may be loaded)
  };

  Where where = Where::kZeroFill;
  bool writable = false;
  bool message = false;  // message-mode (memory-based messaging) page
  bool locked = false;   // lock the mapping in the Cache Kernel when loaded
  bool dirty = false;    // frame contents newer than backing store
  bool frame_owned = true;   // false for fixed/shared frames (devices, channels)
  bool mapping_loaded = false;
  uint32_t backing_page = kNoBackingPage;
  cksim::PhysAddr frame = 0;        // valid when kResident
  cksim::PhysAddr fixed_frame = 0;  // non-zero: always map this exact frame
  uint32_t signal_thread = kNoThread;  // app-kernel thread index for signals
  cksim::PhysAddr cow_source = 0;      // deferred-copy source frame (one-shot)
};

struct VSpace {
  uint64_t cookie = 0;  // == index in the owning kernel's space table
  ck::SpaceId ck_id;    // current identifier; stale after writeback
  bool loaded = false;
  bool locked = false;

  std::map<cksim::VirtAddr, PageRecord> pages;  // keyed by page-aligned vaddr
  std::deque<cksim::VirtAddr> resident_fifo;    // default replacement order

  PageRecord* FindPage(cksim::VirtAddr vaddr) {
    auto it = pages.find(vaddr & ~static_cast<cksim::VirtAddr>(cksim::kPageOffsetMask));
    return it == pages.end() ? nullptr : &it->second;
  }
};

struct ThreadRec {
  uint64_t cookie = 0;  // == index in the owning kernel's thread table
  ck::ThreadId ck_id;
  bool loaded = false;
  bool finished = false;
  bool was_blocked = false;
  // Blocked on an in-flight asynchronous page-in. A checkpoint taken in this
  // window restores the thread runnable: its saved PC re-executes the
  // faulting instruction, which simply re-faults on the restored records.
  bool paging_blocked = false;
  // This record is backed by a NativeProgram (set at create time and by
  // restore). `native` itself is a host pointer and never serialized; the
  // subclass's RestoreExtra must rebind it before the thread reloads.
  bool native_record = false;

  uint32_t space_index = 0;
  uint8_t priority = 0;
  uint8_t cpu_hint = 0xff;
  bool locked = false;

  ckisa::VmContext saved;           // context while unloaded
  ck::NativeProgram* native = nullptr;
  cksim::VirtAddr signal_handler = 0;
  cksim::VirtAddr exception_stack = 0;
  cksim::Cycles total_consumed = 0;
};

}  // namespace ckapp

#endif  // SRC_APPKERNEL_VSPACE_H_

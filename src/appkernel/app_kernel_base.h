// ApplicationKernelBase: the C++ class library application kernels extend.
//
// "A C++ class library has been developed for each of the resources, namely
// memory management, processing and communication. These libraries allow
// applications to start with a common base of functionality and then
// specialize" (section 3). This base provides:
//   * full backing records for spaces/pages/threads and the writeback
//     handlers that keep them current;
//   * a default demand pager (zero-fill and backing-store pages, FIFO
//     replacement, dirty write-back) that subclasses override to specialize
//     -- the database kernel overrides victim choice, MP3D overrides
//     placement, the UNIX emulator overrides fault-to-SEGV policy;
//   * thread create/reload/unload helpers implementing the retry-on-stale
//     protocol of section 2;
//   * program-image loading for CKVM guests.

#ifndef SRC_APPKERNEL_APP_KERNEL_BASE_H_
#define SRC_APPKERNEL_APP_KERNEL_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/appkernel/backing_store.h"
#include "src/appkernel/frame_pool.h"
#include "src/appkernel/vspace.h"
#include "src/ck/cache_kernel.h"
#include "src/isa/assembler.h"

namespace ckckpt {
class AppKernelState;
class Writer;
class Reader;
}  // namespace ckckpt

namespace ckapp {

struct GuestThreadParams {
  uint32_t space_index = 0;
  cksim::VirtAddr entry = 0;
  cksim::VirtAddr stack_top = 0;
  uint8_t priority = 8;
  uint8_t cpu_hint = 0xff;
  bool locked = false;
  cksim::VirtAddr signal_handler = 0;
  cksim::VirtAddr exception_stack = 0;
};

struct PagingStats {
  uint64_t faults = 0;
  uint64_t zero_fills = 0;
  uint64_t pages_in = 0;   // backing store -> memory
  uint64_t pages_out = 0;  // dirty evictions written back
  uint64_t evictions = 0;
  uint64_t illegal_accesses = 0;
  uint64_t cow_copies = 0;
  uint64_t stale_retries = 0;
};

class AppKernelBase : public ck::AppKernel {
 public:
  AppKernelBase(std::string name, uint32_t backing_pages,
                cksim::Cycles backing_latency = 125000);
  ~AppKernelBase() override;

  // The SRM (or test harness) sets the identity after LoadKernel.
  void Attach(ck::KernelId self) { self_ = self; }
  ck::KernelId self() const { return self_; }
  const std::string& name() const { return name_; }

  FramePool& frames() { return frames_; }
  BackingStore& backing() { return backing_; }
  const PagingStats& paging_stats() const { return paging_stats_; }

  // ---- space management ----
  uint32_t CreateSpace(ck::CkApi& api, bool locked = false);
  VSpace& space(uint32_t index) { return *spaces_[index]; }
  uint32_t space_count() const { return static_cast<uint32_t>(spaces_.size()); }
  // Reload the space descriptor if it was written back; returns the current
  // identifier (the retry protocol of section 2).
  ck::SpaceId EnsureSpaceLoaded(ck::CkApi& api, uint32_t index);

  // Region definition (page records only; mappings load on demand).
  void DefineZeroRegion(uint32_t space_index, cksim::VirtAddr vaddr, uint32_t pages,
                        bool writable);
  void DefineBackedRegion(uint32_t space_index, cksim::VirtAddr vaddr, uint32_t pages,
                          uint32_t first_backing_page, bool writable);
  // Fixed-frame regions: device registers, shared message pages. The frames
  // are not drawn from (or returned to) the frame pool.
  void DefineFrameRegion(uint32_t space_index, cksim::VirtAddr vaddr, uint32_t pages,
                         cksim::PhysAddr first_frame, bool writable, bool message,
                         uint32_t signal_thread = kNoThread, bool locked = false);
  // Deferred copy: pages initially map `source` read-only copy-on-write.
  void DefineCowRegion(uint32_t space_index, cksim::VirtAddr vaddr, uint32_t pages,
                       cksim::PhysAddr source_first_frame);

  // Load a CKVM program image into the backing store and define the region.
  // Returns the first backing page used.
  uint32_t LoadProgramImage(uint32_t space_index, const ckisa::Program& program, bool writable);

  // ---- thread management ----
  uint32_t CreateGuestThread(ck::CkApi& api, const GuestThreadParams& params);
  uint32_t CreateNativeThread(ck::CkApi& api, uint32_t space_index, ck::NativeProgram* program,
                              uint8_t priority, bool locked = false, uint8_t cpu_hint = 0xff);
  ThreadRec& thread(uint32_t index) { return *threads_[index]; }
  uint32_t thread_count() const { return static_cast<uint32_t>(threads_.size()); }
  // Load the thread descriptor (again) from the saved record.
  ckbase::CkStatus EnsureThreadLoaded(ck::CkApi& api, uint32_t index);
  void UnloadThreadByIndex(ck::CkApi& api, uint32_t index);
  bool AllThreadsFinished() const;

  // Force a resident page out (replacement experiments / explicit unload).
  void EvictPage(ck::CkApi& api, uint32_t space_index, cksim::VirtAddr vaddr);

  // Load the mapping for a page without a faulting thread (senders must map
  // message pages before signaling; "each application kernel is expected to
  // load all the mappings for a message page when it loads any", section 4.2).
  ckbase::CkStatus EnsureMappingLoaded(ck::CkApi& api, uint32_t space_index,
                                       cksim::VirtAddr vaddr);

  // Copy between a guest space and app-kernel memory (syscall argument
  // strings, console buffers). Pages are materialized as needed.
  bool ReadGuest(ck::CkApi& api, uint32_t space_index, cksim::VirtAddr vaddr, void* out,
                 uint32_t len);
  bool WriteGuest(ck::CkApi& api, uint32_t space_index, cksim::VirtAddr vaddr, const void* data,
                  uint32_t len);

  // Ensure a page's contents are in a physical frame (no mapping load).
  bool MaterializePage(ck::CkApi& api, VSpace& sp, PageRecord& page, cksim::VirtAddr page_vaddr);

  // ---- AppKernel interface (Cache Kernel upcalls) ----
  ck::HandlerAction HandleFault(const ck::FaultForward& fault, ck::CkApi& api) override;
  ck::TrapAction HandleTrap(const ck::TrapForward& trap, ck::CkApi& api) override;
  void OnMappingWriteback(const ck::MappingWriteback& record, ck::CkApi& api) override;
  void OnThreadWriteback(const ck::ThreadWriteback& record, ck::CkApi& api) override;
  void OnSpaceWriteback(const ck::SpaceWriteback& record, ck::CkApi& api) override;
  void OnThreadHalt(ck::ThreadId thread, uint64_t cookie, ck::CkApi& api) override;

  // ---- checkpoint/restore hooks (src/ckpt, docs/CHECKPOINT.md) ----
  // Serialize subclass state (process tables, query engine state, ...) into
  // a checkpoint's kAppExtra record. Runs on a quiesced (fully written-back)
  // kernel. Default: nothing.
  virtual void CaptureExtra(ckckpt::Writer& w, ck::CkApi& api);
  // Rebuild subclass state from the kAppExtra record. Runs after the base
  // records are restored and before any thread reloads; rebind native
  // programs here via RebindNativeProgram and re-arm pending timers. Call
  // `r.Fail(...)` on any semantic mismatch to abort the restore.
  virtual void RestoreExtra(ckckpt::Reader& r, ck::CkApi& api);
  // Whether ResumeRestored should reload this (unfinished) thread eagerly.
  // Default: yes. The UNIX emulator skips swapped-out processes.
  virtual bool ShouldReloadOnRestore(uint32_t thread_index) {
    (void)thread_index;
    return true;
  }
  // Reattach a native program to a restored native thread record.
  void RebindNativeProgram(uint32_t thread_index, ck::NativeProgram* program) {
    threads_[thread_index]->native = program;
  }
  // The SRM swapped this kernel back in (after a plain SwapOut or a
  // Checkpoint). Records are intact but every thread is unloaded and any
  // ThreadId captured before the swap is stale; subclasses reload what must
  // run eagerly. Default: nothing (threads reload on demand).
  virtual void OnSwappedIn(ck::CkApi& api) { (void)api; }

 protected:
  // ---- policy hooks ----
  // Replacement: which resident page of `sp` to evict when the frame pool is
  // dry. Default: FIFO. Return 0 to refuse (fault then fails the thread).
  virtual cksim::VirtAddr ChooseVictim(VSpace& sp);
  // An access with no page record or insufficient rights. Default: terminate
  // the thread. The UNIX emulator overrides this to post SEGV.
  virtual ck::HandlerAction OnIllegalAccess(const ck::FaultForward& fault, ck::CkApi& api);
  // A consistency fault: the line/page is held on a remote node or its
  // memory module failed (section 2.1 footnote). The DSM kernel overrides
  // this to run its consistency protocol; default treats it as illegal.
  virtual ck::HandlerAction OnConsistencyFault(const ck::FaultForward& fault, ck::CkApi& api) {
    return OnIllegalAccess(fault, api);
  }
  // Asynchronous paging: block the faulting thread and resume it after the
  // backing-store latency instead of stalling the CPU. Default off.
  virtual bool UseAsyncPaging() const { return false; }
  // Called when a guest thread halts, after bookkeeping, before unload.
  virtual void OnGuestFinished(uint32_t thread_index, ck::CkApi& api) {
    (void)thread_index;
    (void)api;
  }

  // Allocate a frame, evicting if necessary. 0 on failure.
  cksim::PhysAddr AllocateFrame(ck::CkApi& api, VSpace& sp);
  // Allocate a backing-store page for a dirty zero-fill page being evicted.
  uint32_t AllocateSwapPage();

  // Resolve a fault on a known page record: fetch contents, load mapping,
  // resume. Shared by the default handler and subclass handlers.
  ck::HandlerAction ResolvePageFault(const ck::FaultForward& fault, VSpace& sp, PageRecord& page,
                                     cksim::VirtAddr page_vaddr, ck::CkApi& api);

  ck::KernelId self_;
  std::string name_;
  FramePool frames_;
  BackingStore backing_;
  uint32_t image_next_ = 0;  // program images allocate upward from page 0
  uint32_t swap_next_;       // swap pages allocate downward from the top
  std::vector<std::unique_ptr<VSpace>> spaces_;
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  PagingStats paging_stats_;
  uint32_t halted_threads_ = 0;

 private:
  // The checkpoint subsystem serializes/rebuilds the protected record state
  // without widening the public API (src/ckpt/checkpoint.cc).
  friend class ckckpt::AppKernelState;
};

}  // namespace ckapp

#endif  // SRC_APPKERNEL_APP_KERNEL_BASE_H_

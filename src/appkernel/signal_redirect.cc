#include "src/appkernel/signal_redirect.h"

namespace ckapp {

using ck::CkApi;
using ckbase::CkStatus;
using cksim::VirtAddr;

CkStatus SignalRedirector::Repoint(CkApi& api, uint32_t space_index, VirtAddr page_vaddr,
                                   uint32_t signal_thread) {
  VSpace& sp = kernel_.space(space_index);
  PageRecord* page = sp.FindPage(page_vaddr);
  if (page == nullptr) {
    return CkStatus::kNotFound;
  }
  page->signal_thread = signal_thread;
  // The signal registration lives in the mapping descriptor: reload it.
  if (page->mapping_loaded && sp.loaded) {
    api.UnloadMapping(sp.ck_id, page_vaddr);
  }
  return kernel_.EnsureMappingLoaded(api, space_index, page_vaddr);
}

CkStatus SignalRedirector::Park(CkApi& api, uint32_t space_index, VirtAddr page_vaddr,
                                uint32_t target_thread) {
  page_vaddr &= ~static_cast<VirtAddr>(cksim::kPageOffsetMask);
  CkStatus status = Repoint(api, space_index, page_vaddr, self_index_);
  if (status != CkStatus::kOk) {
    return status;
  }
  parked_[page_vaddr] = Parked{space_index, target_thread};
  // Now the descriptor can go: signals will reach us instead.
  kernel_.UnloadThreadByIndex(api, target_thread);
  return CkStatus::kOk;
}

void SignalRedirector::OnSignal(VirtAddr message_addr, ck::NativeCtx& ctx) {
  CkApi& api = ctx.api();
  VirtAddr page_vaddr = message_addr & ~static_cast<VirtAddr>(cksim::kPageOffsetMask);
  auto it = parked_.find(page_vaddr);
  if (it == parked_.end()) {
    return;  // not one of ours (stale registration)
  }
  Parked parked = it->second;
  parked_.erase(it);

  // Reload the thread (the ~230us descriptor load the paper prices), point
  // the page's signals back at it, and hand over the pending message.
  ThreadRec& rec = kernel_.thread(parked.target_thread);
  rec.was_blocked = true;  // it was waiting on the signal when parked
  if (kernel_.EnsureThreadLoaded(api, parked.target_thread) != CkStatus::kOk) {
    return;
  }
  ++reloads_;
  Repoint(api, parked.space_index, page_vaddr, parked.target_thread);

  if (rec.native != nullptr) {
    // Native waiter: deliver through its own signal entry point.
    api.ResumeThread(rec.ck_id);
    ck::NativeCtx target_ctx(api, rec.ck_id, rec.cookie);
    rec.native->OnSignal(message_addr, target_ctx);
  } else {
    // Guest waiter blocked in await-signal: wake it with the address in a0.
    api.ResumeThread(rec.ck_id, /*has_return=*/true, /*return_value=*/message_addr);
  }
}

}  // namespace ckapp

#include "src/appkernel/debugger.h"

namespace ckapp {

using ck::CkApi;
using ckbase::CkStatus;
using cksim::VirtAddr;

CkStatus Debugger::PatchWord(CkApi& api, uint32_t space_index, VirtAddr vaddr, uint32_t word,
                             uint32_t* old_word) {
  if ((vaddr & 3u) != 0) {
    return CkStatus::kInvalidArgument;
  }
  uint32_t previous = 0;
  if (!kernel_.ReadGuest(api, space_index, vaddr, &previous, 4)) {
    return CkStatus::kNotFound;
  }
  if (old_word != nullptr) {
    *old_word = previous;
  }
  if (!kernel_.WriteGuest(api, space_index, vaddr, &word, 4)) {
    return CkStatus::kNotFound;
  }
  return CkStatus::kOk;
}

CkStatus Debugger::SetBreakpoint(CkApi& api, uint32_t space_index, VirtAddr vaddr) {
  auto key = std::make_pair(space_index, vaddr);
  if (breakpoints_.count(key) != 0) {
    return CkStatus::kBusy;
  }
  uint32_t trap_word = ckisa::Encode(ckisa::Op::kTrap, 0, 0, kBreakpointTrap);
  uint32_t original = 0;
  CkStatus status = PatchWord(api, space_index, vaddr, trap_word, &original);
  if (status != CkStatus::kOk) {
    return status;
  }
  breakpoints_[key] = Planted{space_index, original};
  return CkStatus::kOk;
}

CkStatus Debugger::ClearBreakpoint(CkApi& api, uint32_t space_index, VirtAddr vaddr) {
  auto it = breakpoints_.find(std::make_pair(space_index, vaddr));
  if (it == breakpoints_.end()) {
    return CkStatus::kNotFound;
  }
  CkStatus status = PatchWord(api, space_index, vaddr, it->second.original_word, nullptr);
  breakpoints_.erase(it);
  return status;
}

ck::HandlerAction Debugger::OnBreakpointTrap(const ck::TrapForward& trap, CkApi& api) {
  uint32_t thread_index = static_cast<uint32_t>(trap.thread_cookie);
  ThreadRec& rec = kernel_.thread(thread_index);

  // The trap advanced pc past the planted word; the breakpoint lives at
  // pc - 4. Unload the thread: its state writes back into rec.saved, where
  // the "user" examines it (section 2.3).
  ++hits_;
  kernel_.UnloadThreadByIndex(api, thread_index);
  VirtAddr bp = rec.saved.pc - 4;
  rec.saved.pc = bp;  // re-execute the (restored) instruction on resume
  stopped_[thread_index] = bp;
  return ck::HandlerAction::kBlock;  // the thread is already gone
}

CkStatus Debugger::Resume(CkApi& api, uint32_t thread_index) {
  auto it = stopped_.find(thread_index);
  if (it == stopped_.end()) {
    return CkStatus::kNotFound;
  }
  ThreadRec& rec = kernel_.thread(thread_index);
  VirtAddr bp = it->second;
  stopped_.erase(it);

  // Single-shot: restore the original instruction, then reload the thread
  // at the breakpoint address ("reloaded on user request").
  CkStatus status = ClearBreakpoint(api, rec.space_index, bp);
  if (status != CkStatus::kOk && status != CkStatus::kNotFound) {
    return status;
  }
  rec.was_blocked = false;
  return kernel_.EnsureThreadLoaded(api, thread_index);
}

}  // namespace ckapp

// The System Resource Manager (SRM), the first application kernel (section 3).
//
// "A special application kernel called the system resource manager,
// replicated one per Cache Kernel/MPM, manages the resource sharing between
// other application kernels." The SRM:
//   * boots as the first kernel, locked, with full permissions on all
//     physical resources;
//   * owns the page-group allocator and grants groups, processor
//     percentages, priority caps and lock limits to the kernels it launches;
//   * acts as the owning kernel for other kernels' kernel objects, handling
//     their writeback (swap-out/swap-in of whole application kernels);
//   * coordinates with SRM replicas on other MPMs over the fiber-channel RPC
//     facility.

#ifndef SRC_SRM_SRM_H_
#define SRC_SRM_SRM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/appkernel/app_kernel_base.h"
#include "src/appkernel/channel.h"
#include "src/ckpt/checkpoint.h"
#include "src/ckpt/image.h"
#include "src/sim/devices.h"

namespace cksrm {

// SRM lifecycle operations, traced as obs::EventType::kSrmOp spans (arg16 is
// this code, arg32 the span id). Stable wire values: the trace exporter and
// the flight recorder both name events by these.
enum class SrmOpCode : uint16_t {
  kLaunch = 0,
  kSwapOut = 1,
  kSwapIn = 2,
  kCheckpoint = 3,
  kRestore = 4,
  kMigrate = 5,
  kAcceptMigration = 6,
  kCheckpointToStore = 7,
  kRestoreFromStore = 8,
};

inline const char* SrmOpName(SrmOpCode op) {
  switch (op) {
    case SrmOpCode::kLaunch:
      return "launch";
    case SrmOpCode::kSwapOut:
      return "swap-out";
    case SrmOpCode::kSwapIn:
      return "swap-in";
    case SrmOpCode::kCheckpoint:
      return "checkpoint";
    case SrmOpCode::kRestore:
      return "restore";
    case SrmOpCode::kMigrate:
      return "migrate";
    case SrmOpCode::kAcceptMigration:
      return "accept-migration";
    case SrmOpCode::kCheckpointToStore:
      return "checkpoint-to-store";
    case SrmOpCode::kRestoreFromStore:
      return "restore-from-store";
  }
  return "?";
}

// Resource grant for one application kernel.
struct LaunchParams {
  uint32_t page_groups = 2;                 // 512 KiB units of physical memory
  uint8_t cpu_percent[ck::kMaxCpus] = {100, 100, 100, 100};
  uint8_t max_priority = 24;
  uint8_t lock_limits[ck::kObjectTypeCount] = {2, 4, 8, 64};
  bool locked_kernel_object = false;        // pin the kernel descriptor itself
};

class Srm : public ckapp::AppKernelBase {
 public:
  explicit Srm(ck::CacheKernel& ck);

  // Create the first kernel object and take ownership of all allocatable
  // page groups. Call once, before the machine runs.
  void Boot();

  ck::CacheKernel& ck() { return ck_; }
  // SRM work runs on CPU 0 unless an event hands it another CPU.
  ck::CkApi Api() { return ck::CkApi(ck_, self(), ck_.machine().cpu(0)); }

  // ---- application-kernel lifecycle ----
  ckbase::Result<ck::KernelId> Launch(ckapp::AppKernelBase& app, const LaunchParams& params);
  // Swap a kernel out: unloads its kernel object (cascading writeback of all
  // its spaces, threads and mappings) but keeps its grants reserved.
  ckbase::CkStatus SwapOut(ckapp::AppKernelBase& app);
  // Reload a swapped kernel object and re-apply its grants. The application
  // kernel's own records reload spaces/threads on demand.
  ckbase::CkStatus SwapIn(ckapp::AppKernelBase& app);
  bool IsSwappedOut(const ckapp::AppKernelBase& app) const;

  // Adjust a running kernel's processor quota (the SRM modify operation).
  ckbase::CkStatus AdjustQuota(ckapp::AppKernelBase& app, const uint8_t percent[ck::kMaxCpus],
                               uint8_t max_priority);

  // ---- physical memory ----
  // Allocate `count` contiguous page groups to `app` (read-write) and add
  // their frames to the app's pool. Returns the first group or kNoResources.
  ckbase::Result<uint32_t> GrantGroups(ckapp::AppKernelBase& app, uint32_t count);
  // Grant access to specific groups (shared channels, device regions)
  // without transferring frames into the app's pool.
  ckbase::CkStatus GrantSharedGroups(ckapp::AppKernelBase& app, uint32_t first_group,
                                     uint32_t count, ck::GroupAccess access);
  // Reserve groups for the SRM itself (device placement, channel frames).
  ckbase::Result<uint32_t> ReserveGroups(uint32_t count);

  uint32_t free_groups() const;

  // ---- checkpoint / migration / failover (docs/CHECKPOINT.md) ----
  // Quiesce `app` (kernel-object unload cascades the dependency-ordered
  // writeback of every space, thread and mapping), capture its complete
  // written-back state into `image` -- including the launch grant a peer SRM
  // needs to recreate it -- then swap it back in and let it continue. The
  // captured image is observably bit-exact with the running kernel.
  ckbase::CkStatus Checkpoint(ckapp::AppKernelBase& app, ckckpt::CkptImage* image);

  // Launch a fresh `app` instance from `image` on this SRM's machine (using
  // the grant recorded at capture) and resume its threads. `options`
  // translates fixed frames -- device regions, message-channel pages -- to
  // their placement on this machine. On failure nothing of `app` has been
  // loaded into the Cache Kernel and the instance must be discarded.
  ckbase::CkStatus Restore(ckapp::AppKernelBase& app, const ckckpt::CkptImage& image,
                           const ckckpt::RestoreOptions& options, std::string* error);

  // Live migration: quiesce + capture `app`, then ship the image to the peer
  // SRM over the fiber channel's bulk-transfer path. The source instance is
  // left swapped out (its grants stay reserved until the registry entry is
  // torn down); the kernel continues on the target after AcceptMigration.
  ckbase::CkStatus Migrate(ckapp::AppKernelBase& app, cksim::FiberChannelDevice& fc);

  // Poll `fc` for a migrated image; if one has been delivered, launch `app`
  // from it. Returns kRetry while the image is still in flight.
  ckbase::CkStatus AcceptMigration(cksim::FiberChannelDevice& fc, ckapp::AppKernelBase& app,
                                   const ckckpt::RestoreOptions& options, std::string* error);

  // Crash failover, capture side: checkpoint `app` to the stable store under
  // `key`, charging the simulated transfer cost to this SRM's CPU. Called
  // periodically; each call overwrites the previous image.
  ckbase::CkStatus CheckpointToStore(ckapp::AppKernelBase& app, cksim::StableStore& store,
                                     const std::string& key);

  // Crash failover, recovery side: restart a kernel lost with its MPM from
  // the last image under `key`. Work done after that checkpoint is lost.
  ckbase::CkStatus RestoreFromStore(ckapp::AppKernelBase& app, const cksim::StableStore& store,
                                    const std::string& key,
                                    const ckckpt::RestoreOptions& options, std::string* error);

  // ---- kernel-object writeback (we are the managing kernel) ----
  void OnKernelWriteback(const ck::KernelWriteback& record, ck::CkApi& api) override;

  // ---- I/O usage control (section 4.3): the channel manager disconnects
  // kernels that exceed their network quota. Packet counts are polled from
  // devices by the example/bench harnesses via RecordIo. ----
  void SetIoQuota(ckapp::AppKernelBase& app, uint64_t packets_per_window);
  bool RecordIo(ckapp::AppKernelBase& app, uint64_t packets);  // false = disconnected
  bool IsIoDisconnected(const ckapp::AppKernelBase& app) const;
  void ResetIoWindow();

  // ---- observability ----
  // Called on events worth a flight record: "restore-preflight: <error>" when
  // a restore fails before (or while) rebuilding state, "failover" when a
  // kernel is restarted from the stable store. ObsSession wires this to the
  // flight recorder.
  void set_event_hook(std::function<void(const std::string&)> hook) {
    event_hook_ = std::move(hook);
  }

 private:
  struct Registered {
    ckapp::AppKernelBase* app = nullptr;
    ck::KernelId id;
    bool loaded = false;
    LaunchParams params;
    std::vector<std::pair<uint32_t, uint32_t>> owned_groups;   // (first, count)
    std::vector<std::pair<uint32_t, uint32_t>> shared_groups;  // (first, count)
    uint64_t io_quota = ~uint64_t{0};
    uint64_t io_used = 0;
    bool io_disconnected = false;
  };

  // Wire the kernel's FramePool into the tiered-memory layer (docs/TIERING.md)
  // so pool-held frames (file cache, paging backing store) are DRAM-tracked
  // and demotable. Rebound on every Attach -- SwapIn issues a fresh KernelId.
  void BindTierHook(ckapp::AppKernelBase& app, ck::KernelId id);

  Registered* FindRegistration(const ckapp::AppKernelBase& app);
  const Registered* FindRegistration(const ckapp::AppKernelBase& app) const;
  ckbase::CkStatus ApplyGrants(Registered& reg);
  // Swap out + verify quiescence + capture + record the launch grant. The
  // kernel is left swapped out; callers SwapIn (Checkpoint) or not (Migrate).
  ckbase::CkStatus CaptureQuiesced(Registered& reg, ckapp::AppKernelBase& app,
                                   ckckpt::CkptImage* image);
  // Allocate a span (deterministic, machine-local) and trace the operation.
  // Span allocation is unconditional so enabling tracing never perturbs the
  // machine's deterministic state. Returns the span id for propagation.
  uint32_t EmitOp(SrmOpCode op);
  void NotifyEvent(const std::string& what) {
    if (event_hook_) {
      event_hook_(what);
    }
  }

  ck::CacheKernel& ck_;
  std::vector<std::unique_ptr<Registered>> registry_;
  std::vector<int32_t> group_owner_;  // -1 free, -2 reserved/SRM, else registry index
  std::function<void(const std::string&)> event_hook_;
};

}  // namespace cksrm

#endif  // SRC_SRM_SRM_H_

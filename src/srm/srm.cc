#include "src/srm/srm.h"

#include "src/base/log.h"
#include "src/obs/trace.h"

namespace cksrm {

using ck::CkApi;
using ck::GroupAccess;
using ck::KernelId;
using ckbase::CkStatus;
using ckbase::Result;

Srm::Srm(ck::CacheKernel& ck) : ckapp::AppKernelBase("srm", /*backing_pages=*/512), ck_(ck) {}

uint32_t Srm::EmitOp(SrmOpCode op) {
  cksim::Machine& m = ck_.machine();
  uint32_t span = m.AllocSpanId();
  // SRM work runs on CPU 0; its trace events land there too.
  CK_TRACE(m.trace_ring(0), obs::EventType::kSrmOp, m.Now(), static_cast<uint16_t>(op), span);
  return span;
}

void Srm::Boot() {
  KernelId id = ck_.BootFirstKernel(this, /*cookie=*/0);
  Attach(id);

  // Claim the allocatable physical memory (everything below the Cache
  // Kernel's page-table arena).
  uint32_t usable = (ck_.machine().memory().size() - ck_.config().page_table_arena_bytes) /
                    cksim::kPageGroupBytes;
  group_owner_.assign(usable, -1);
  // Group 0 stays with the SRM: frame 0 doubles as the "no frame" sentinel
  // and early boot structures live low.
  group_owner_[0] = -2;
  frames_.AddPageGroup(0);

  // The SRM needs its own address space for its internal (RPC) threads.
  CkApi api = Api();
  CreateSpace(api, /*locked=*/true);
}

Srm::Registered* Srm::FindRegistration(const ckapp::AppKernelBase& app) {
  // Newest first: a dead kernel's AppKernelBase may have been destroyed and
  // a fresh one allocated at the same address; the most recent registration
  // is the live one.
  for (auto it = registry_.rbegin(); it != registry_.rend(); ++it) {
    if ((*it)->app == &app) {
      return it->get();
    }
  }
  return nullptr;
}

const Srm::Registered* Srm::FindRegistration(const ckapp::AppKernelBase& app) const {
  for (auto it = registry_.rbegin(); it != registry_.rend(); ++it) {
    if ((*it)->app == &app) {
      return it->get();
    }
  }
  return nullptr;
}

uint32_t Srm::free_groups() const {
  uint32_t n = 0;
  for (int32_t owner : group_owner_) {
    if (owner == -1) {
      ++n;
    }
  }
  return n;
}

Result<uint32_t> Srm::ReserveGroups(uint32_t count) {
  // First-fit contiguous scan.
  for (uint32_t start = 0; start + count <= group_owner_.size(); ++start) {
    bool ok = true;
    for (uint32_t i = 0; i < count; ++i) {
      if (group_owner_[start + i] != -1) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (uint32_t i = 0; i < count; ++i) {
        group_owner_[start + i] = -2;
      }
      return start;
    }
  }
  return CkStatus::kNoResources;
}

Result<KernelId> Srm::Launch(ckapp::AppKernelBase& app, const LaunchParams& params) {
  EmitOp(SrmOpCode::kLaunch);
  CkApi api = Api();
  auto reg = std::make_unique<Registered>();
  reg->app = &app;
  reg->params = params;

  Result<KernelId> loaded =
      api.LoadKernel(&app, /*cookie=*/registry_.size(), params.locked_kernel_object);
  if (!loaded.ok()) {
    return loaded.status();
  }
  reg->id = loaded.value();
  reg->loaded = true;
  app.Attach(reg->id);
  BindTierHook(app, reg->id);

  registry_.push_back(std::move(reg));
  Registered& r = *registry_.back();

  // Initial memory allocation ("resources are allocated in large units that
  // the application kernel can then suballocate internally").
  if (params.page_groups > 0) {
    Result<uint32_t> groups = GrantGroups(app, params.page_groups);
    if (!groups.ok()) {
      return groups.status();
    }
  }

  CkStatus status = ApplyGrants(r);
  if (status != CkStatus::kOk) {
    return status;
  }
  CKLOG(kInfo) << "srm: launched kernel '" << app.name() << "'";
  return r.id;
}

void Srm::BindTierHook(ckapp::AppKernelBase& app, ck::KernelId id) {
  ck::CacheKernel* ck = &ck_;
  app.frames().BindTierHook([ck, id](cksim::PhysAddr frame, bool allocated) {
    ck->TierFramePoolEvent(id, frame, allocated);
  });
}

CkStatus Srm::ApplyGrants(Registered& reg) {
  CkApi api = Api();
  CkStatus status = api.SetCpuQuota(reg.id, reg.params.cpu_percent, reg.params.max_priority);
  if (status != CkStatus::kOk) {
    return status;
  }
  status = api.SetLockLimits(reg.id, reg.params.lock_limits);
  if (status != CkStatus::kOk) {
    return status;
  }
  for (auto [first, count] : reg.owned_groups) {
    status = api.GrantPageGroups(reg.id, first, count, GroupAccess::kReadWrite);
    if (status != CkStatus::kOk) {
      return status;
    }
  }
  for (auto [first, count] : reg.shared_groups) {
    status = api.GrantPageGroups(reg.id, first, count, GroupAccess::kReadWrite);
    if (status != CkStatus::kOk) {
      return status;
    }
  }
  return CkStatus::kOk;
}

Result<uint32_t> Srm::GrantGroups(ckapp::AppKernelBase& app, uint32_t count) {
  Registered* reg = FindRegistration(app);
  if (reg == nullptr) {
    return CkStatus::kNotFound;
  }
  int32_t index = -1;
  for (size_t i = 0; i < registry_.size(); ++i) {
    if (registry_[i].get() == reg) {
      index = static_cast<int32_t>(i);
    }
  }
  for (uint32_t start = 0; start + count <= group_owner_.size(); ++start) {
    bool ok = true;
    for (uint32_t i = 0; i < count; ++i) {
      if (group_owner_[start + i] != -1) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      continue;
    }
    for (uint32_t i = 0; i < count; ++i) {
      group_owner_[start + i] = index;
      app.frames().AddPageGroup(start + i);
    }
    reg->owned_groups.emplace_back(start, count);
    if (reg->loaded) {
      CkApi api = Api();
      CkStatus status = api.GrantPageGroups(reg->id, start, count, GroupAccess::kReadWrite);
      if (status != CkStatus::kOk) {
        return status;
      }
    }
    return start;
  }
  return CkStatus::kNoResources;
}

CkStatus Srm::GrantSharedGroups(ckapp::AppKernelBase& app, uint32_t first_group, uint32_t count,
                                GroupAccess access) {
  Registered* reg = FindRegistration(app);
  if (reg == nullptr) {
    return CkStatus::kNotFound;
  }
  reg->shared_groups.emplace_back(first_group, count);
  if (reg->loaded) {
    CkApi api = Api();
    return api.GrantPageGroups(reg->id, first_group, count, access);
  }
  return CkStatus::kOk;
}

CkStatus Srm::SwapOut(ckapp::AppKernelBase& app) {
  EmitOp(SrmOpCode::kSwapOut);
  Registered* reg = FindRegistration(app);
  if (reg == nullptr) {
    return CkStatus::kNotFound;
  }
  if (!reg->loaded) {
    return CkStatus::kOk;
  }
  CkApi api = Api();
  CkStatus status = api.UnloadKernel(reg->id);
  // OnKernelWriteback marks the registration unloaded.
  return status;
}

CkStatus Srm::SwapIn(ckapp::AppKernelBase& app) {
  EmitOp(SrmOpCode::kSwapIn);
  Registered* reg = FindRegistration(app);
  if (reg == nullptr) {
    return CkStatus::kNotFound;
  }
  if (reg->loaded) {
    return CkStatus::kOk;
  }
  CkApi api = Api();
  uint64_t cookie = 0;
  for (size_t i = 0; i < registry_.size(); ++i) {
    if (registry_[i].get() == reg) {
      cookie = i;
    }
  }
  Result<KernelId> loaded = api.LoadKernel(&app, cookie, reg->params.locked_kernel_object);
  if (!loaded.ok()) {
    return loaded.status();
  }
  reg->id = loaded.value();
  reg->loaded = true;
  app.Attach(reg->id);
  BindTierHook(app, reg->id);
  CkStatus status = ApplyGrants(*reg);
  if (status != CkStatus::kOk) {
    return status;
  }
  // Let the kernel reload whatever must run without waiting for a fault or
  // wakeup (scheduler threads whose pre-swap wakeups are now stale, etc.).
  CkApi app_api(ck_, app.self(), ck_.machine().cpu(0));
  app.OnSwappedIn(app_api);
  return CkStatus::kOk;
}

bool Srm::IsSwappedOut(const ckapp::AppKernelBase& app) const {
  const Registered* reg = FindRegistration(app);
  return reg != nullptr && !reg->loaded;
}

CkStatus Srm::AdjustQuota(ckapp::AppKernelBase& app, const uint8_t percent[ck::kMaxCpus],
                          uint8_t max_priority) {
  Registered* reg = FindRegistration(app);
  if (reg == nullptr) {
    return CkStatus::kNotFound;
  }
  for (uint32_t c = 0; c < ck::kMaxCpus; ++c) {
    reg->params.cpu_percent[c] = percent[c];
  }
  reg->params.max_priority = max_priority;
  if (!reg->loaded) {
    return CkStatus::kOk;
  }
  CkApi api = Api();
  return api.SetCpuQuota(reg->id, percent, max_priority);
}

CkStatus Srm::CaptureQuiesced(Registered& reg, ckapp::AppKernelBase& app,
                              ckckpt::CkptImage* image) {
  // Enumerate what the cascade is about to write back, then quiesce. After
  // UnloadKernel the id is stale and every count must read zero: nothing
  // loaded in the Cache Kernel belongs to this kernel any more, so the
  // application kernel's records are the complete state ("writeback
  // completeness", docs/CHECKPOINT.md).
  auto before = ck_.LoadedCountsFor(reg.id);
  CkStatus status = SwapOut(app);
  if (status != CkStatus::kOk) {
    return status;
  }
  auto after = ck_.LoadedCountsFor(reg.id);
  for (uint32_t count : after) {
    if (count != 0) {
      CKLOG(kError) << "srm: kernel '" << app.name() << "' not quiesced after unload";
      return CkStatus::kBusy;
    }
  }
  CKLOG(kInfo) << "srm: capturing '" << app.name() << "' (" << before[0] << " kernel, "
               << before[1] << " spaces, " << before[2] << " threads, " << before[3]
               << " mappings written back)";

  CkApi api = Api();
  ckckpt::AppKernelState::Capture(app, api, image);

  // Record the resource grant so a peer SRM can recreate the kernel with
  // fresh page-group and CPU grants on its own machine.
  ckckpt::Writer w;
  w.U32(reg.params.page_groups);
  for (uint32_t c = 0; c < ck::kMaxCpus; ++c) {
    w.U8(reg.params.cpu_percent[c]);
  }
  w.U8(reg.params.max_priority);
  for (uint32_t t = 0; t < ck::kObjectTypeCount; ++t) {
    w.U8(reg.params.lock_limits[t]);
  }
  w.Bool(reg.params.locked_kernel_object);
  image->Append(ckckpt::RecordType::kLaunchParams, w.Take());
  return CkStatus::kOk;
}

CkStatus Srm::Checkpoint(ckapp::AppKernelBase& app, ckckpt::CkptImage* image) {
  EmitOp(SrmOpCode::kCheckpoint);
  Registered* reg = FindRegistration(app);
  if (reg == nullptr) {
    return CkStatus::kNotFound;
  }
  CkStatus status = CaptureQuiesced(*reg, app, image);
  if (status != CkStatus::kOk) {
    return status;
  }
  // Reload in place: the kernel resumes from exactly the captured state.
  return SwapIn(app);
}

CkStatus Srm::Restore(ckapp::AppKernelBase& app, const ckckpt::CkptImage& image,
                      const ckckpt::RestoreOptions& options, std::string* error) {
  EmitOp(SrmOpCode::kRestore);
  const ckckpt::CkptRecord* lp = image.Find(ckckpt::RecordType::kLaunchParams);
  if (lp == nullptr) {
    *error = "image has no launch-params record";
    NotifyEvent("restore-preflight: " + *error);
    return CkStatus::kInvalidArgument;
  }
  ckckpt::Reader r(lp->payload);
  LaunchParams params;
  params.page_groups = r.U32();
  for (uint32_t c = 0; c < ck::kMaxCpus; ++c) {
    params.cpu_percent[c] = r.U8();
  }
  params.max_priority = r.U8();
  for (uint32_t t = 0; t < ck::kObjectTypeCount; ++t) {
    params.lock_limits[t] = r.U8();
  }
  params.locked_kernel_object = r.Bool();
  if (!r.Done()) {
    *error = "malformed launch-params record";
    NotifyEvent("restore-preflight: " + *error);
    return CkStatus::kInvalidArgument;
  }

  Result<KernelId> launched = Launch(app, params);
  if (!launched.ok()) {
    *error = "relaunch failed";
    NotifyEvent("restore-preflight: " + *error);
    return launched.status();
  }
  // Each remap target names a fixed region on this machine (device registers,
  // message-channel pages). Grant the restored kernel shared access to those
  // groups, as the source SRM did at original setup, so the record rebuild
  // can carry the captured channel payloads across.
  for (const ckckpt::FrameRemap& remap : options.frame_remaps) {
    if (remap.pages == 0) {
      continue;
    }
    uint32_t first = cksim::PageGroupOf(remap.new_base);
    uint32_t last = cksim::PageGroupOf(remap.new_base + remap.pages * cksim::kPageSize - 1);
    CkStatus granted = GrantSharedGroups(app, first, last - first + 1, ck::GroupAccess::kReadWrite);
    if (granted != CkStatus::kOk) {
      *error = "cannot grant restored kernel access to remapped frame region";
      return granted;
    }
  }
  // Record rebuild and thread reload run with the app's own authority: the
  // restored kernel may only touch frames it has been granted.
  CkApi app_api(ck_, app.self(), ck_.machine().cpu(0));
  if (!ckckpt::AppKernelState::Restore(app, app_api, image, options, error)) {
    return CkStatus::kInvalidArgument;
  }
  if (!ckckpt::AppKernelState::Resume(app, app_api, error)) {
    return CkStatus::kInvalidArgument;
  }
  CKLOG(kInfo) << "srm: restored kernel '" << app.name() << "'";
  return CkStatus::kOk;
}

CkStatus Srm::Migrate(ckapp::AppKernelBase& app, cksim::FiberChannelDevice& fc) {
  Registered* reg = FindRegistration(app);
  if (reg == nullptr) {
    return CkStatus::kNotFound;
  }
  ckckpt::CkptImage image;
  CkStatus status = CaptureQuiesced(*reg, app, &image);
  if (status != CkStatus::kOk) {
    return status;
  }
  std::vector<uint8_t> bytes = image.Serialize();
  CKLOG(kInfo) << "srm: migrating '" << app.name() << "' (" << bytes.size() << " bytes)";
  // The migration span rides the bulk transfer out of band, so the target's
  // bulk.recv (and the Chrome flow arrow) is causally bound to this operation.
  uint32_t span = EmitOp(SrmOpCode::kMigrate);
  fc.SendBulk(std::move(bytes), ck_.machine().Now(), span);
  // The source stays swapped out; the kernel's next instruction executes on
  // the target machine.
  return CkStatus::kOk;
}

CkStatus Srm::AcceptMigration(cksim::FiberChannelDevice& fc, ckapp::AppKernelBase& app,
                              const ckckpt::RestoreOptions& options, std::string* error) {
  std::vector<uint8_t> bytes;
  uint32_t inbound_span = 0;
  if (!fc.PollBulk(&bytes, ck_.machine().Now(), &inbound_span)) {
    return CkStatus::kRetry;  // still on the wire
  }
  // Emitted only once the image has landed (polling while in flight is not an
  // operation). PollBulk traced bulk.recv under the sender's migration span;
  // this op span marks where the target picks the kernel up.
  EmitOp(SrmOpCode::kAcceptMigration);
  CKLOG(kInfo) << "srm: accepting migrated image (" << bytes.size() << " bytes, span "
               << inbound_span << ")";
  ckckpt::CkptImage image;
  if (!ckckpt::CkptImage::Parse(bytes, &image, error)) {
    NotifyEvent("restore-preflight: " + *error);
    return CkStatus::kInvalidArgument;
  }
  return Restore(app, image, options, error);
}

CkStatus Srm::CheckpointToStore(ckapp::AppKernelBase& app, cksim::StableStore& store,
                                const std::string& key) {
  EmitOp(SrmOpCode::kCheckpointToStore);
  ckckpt::CkptImage image;
  CkStatus status = Checkpoint(app, &image);
  if (status != CkStatus::kOk) {
    return status;
  }
  CkApi api = Api();
  api.Charge(store.Put(key, image.Serialize()));
  return CkStatus::kOk;
}

CkStatus Srm::RestoreFromStore(ckapp::AppKernelBase& app, const cksim::StableStore& store,
                               const std::string& key, const ckckpt::RestoreOptions& options,
                               std::string* error) {
  EmitOp(SrmOpCode::kRestoreFromStore);
  // Crash failover: the machine that ran this kernel is gone; snapshot the
  // survivor's state before we rebuild on it.
  NotifyEvent("failover");
  std::vector<uint8_t> bytes;
  cksim::Cycles cost = 0;
  if (!store.Get(key, &bytes, &cost)) {
    *error = "no checkpoint in stable store under key '" + key + "'";
    NotifyEvent("restore-preflight: " + *error);
    return CkStatus::kNotFound;
  }
  CkApi api = Api();
  api.Charge(cost);
  ckckpt::CkptImage image;
  if (!ckckpt::CkptImage::Parse(bytes, &image, error)) {
    NotifyEvent("restore-preflight: " + *error);
    return CkStatus::kInvalidArgument;
  }
  return Restore(app, image, options, error);
}

void Srm::OnKernelWriteback(const ck::KernelWriteback& record, CkApi& api) {
  (void)api;
  if (record.cookie < registry_.size()) {
    registry_[record.cookie]->loaded = false;
    CKLOG(kInfo) << "srm: kernel '" << registry_[record.cookie]->app->name()
                 << "' written back (swapped out)";
  }
}

void Srm::SetIoQuota(ckapp::AppKernelBase& app, uint64_t packets_per_window) {
  Registered* reg = FindRegistration(app);
  if (reg != nullptr) {
    reg->io_quota = packets_per_window;
  }
}

bool Srm::RecordIo(ckapp::AppKernelBase& app, uint64_t packets) {
  Registered* reg = FindRegistration(app);
  if (reg == nullptr) {
    return true;
  }
  reg->io_used += packets;
  if (reg->io_used > reg->io_quota) {
    // "temporarily disconnects application kernels that exceed their quota,
    // exploiting the connection-oriented nature of this networking facility"
    reg->io_disconnected = true;
  }
  return !reg->io_disconnected;
}

bool Srm::IsIoDisconnected(const ckapp::AppKernelBase& app) const {
  const Registered* reg = FindRegistration(app);
  return reg != nullptr && reg->io_disconnected;
}

void Srm::ResetIoWindow() {
  for (auto& reg : registry_) {
    reg->io_used = 0;
    reg->io_disconnected = false;
  }
}

}  // namespace cksrm

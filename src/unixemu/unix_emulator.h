// UNIX emulator application kernel.
//
// The paper's running example: an emulator kernel that implements UNIX-like
// process services entirely in user mode on the Cache Kernel interface
// (section 2 passim). This emulator provides:
//   * processes with stable pids (independent of the transient Cache Kernel
//     identifiers), an address space and one main thread each;
//   * demand paging with asynchronous page-in ("a page read from backing
//     store incurs costs that make the Cache Kernel overhead insignificant");
//   * syscalls via trap forwarding: getpid, exit, write (console), sbrk,
//     sleep, nice, sigsegv handler registration;
//   * SEGV delivery: resuming the thread at the registered user handler
//     instead of loading a mapping (section 2.1's alternative path);
//   * long sleeps unload the thread descriptor ("a thread is unloaded when
//     it begins to sleep with low priority...reloaded when a wakeup call is
//     issued", section 2.3) and reload on wakeup;
//   * whole-process swap-out (space + thread unloaded, frames paged out);
//   * a per-processor scheduling thread that ages compute-bound processes
//     down and boosts interactive ones ("the UNIX emulator degrades the
//     priority of compute-bound programs", section 4.3).

#ifndef SRC_UNIXEMU_UNIX_EMULATOR_H_
#define SRC_UNIXEMU_UNIX_EMULATOR_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/appkernel/app_kernel_base.h"
#include "src/isa/assembler.h"

namespace ckunix {

// Syscall trap numbers (>= ck::kFirstAppTrap reaches HandleTrap).
inline constexpr uint16_t kSysGetPid = 16;
inline constexpr uint16_t kSysExit = 17;    // a0 = exit code
inline constexpr uint16_t kSysWrite = 18;   // a0 = buf, a1 = len -> console
inline constexpr uint16_t kSysSbrk = 19;    // a0 = pages -> old break
inline constexpr uint16_t kSysSleep = 20;   // a0 = microseconds
inline constexpr uint16_t kSysNice = 21;    // a0 = new priority (capped)
inline constexpr uint16_t kSysSigSegv = 22; // a0 = handler vaddr (0 clears)
inline constexpr uint16_t kSysGetTime = 23; // -> microseconds since boot
inline constexpr uint16_t kSysSpawn = 24;   // a0 = registered program index -> child pid
inline constexpr uint16_t kSysWaitPid = 25; // a0 = pid; blocks -> exit code
inline constexpr uint16_t kSysSend = 26;    // a0 = dest pid, a1 = buf, a2 = len
inline constexpr uint16_t kSysRecv = 27;    // a0 = buf, a1 = max; blocks -> len

// Sleeps at least this long unload the thread descriptor instead of keeping
// it blocked in the Cache Kernel (thread reload is ~230us, trivial against
// interactive response times).
inline constexpr cksim::Cycles kUnloadSleepThreshold = 250000;  // 10 ms

struct Process {
  enum class State : uint8_t { kRunnable, kSleeping, kZombie };

  int pid = 0;
  State state = State::kRunnable;
  int exit_code = 0;
  bool segv_fault = false;
  uint32_t space_index = 0;
  uint32_t thread_index = 0;
  cksim::VirtAddr brk = 0;          // heap break (page aligned)
  cksim::VirtAddr segv_handler = 0;
  std::string console;              // bytes written via kSysWrite
  uint64_t syscalls = 0;
  bool swapped = false;
  std::vector<int> waiters;         // pids blocked in waitpid on this process
  std::deque<std::vector<uint8_t>> inbox;  // kSysSend/kSysRecv messages
  bool recv_blocked = false;
  cksim::VirtAddr recv_buf = 0;
  uint32_t recv_max = 0;
  cksim::Cycles sleep_until = 0;    // absolute wakeup time while kSleeping
};

struct UnixConfig {
  uint32_t backing_pages = 2048;
  cksim::Cycles backing_latency = 125000;  // 5 ms
  bool async_paging = true;
  uint8_t default_priority = 12;
  uint8_t batch_priority = 4;       // aged-down compute-bound level
  cksim::Cycles sched_interval = 2500000;  // 100 ms rescheduling interval
  bool run_scheduler_thread = true;
  uint32_t stack_pages = 4;
  uint32_t heap_base = 0x20000000;
  uint32_t stack_top = 0x30000000;
};

class UnixEmulator : public ckapp::AppKernelBase {
 public:
  UnixEmulator(ck::CacheKernel& ck, const UnixConfig& config = UnixConfig());
  ~UnixEmulator() override;

  // Start the per-processor scheduling threads. Requires Attach() (launch by
  // the SRM) first.
  void Start(ck::CkApi& api);

  // Create a process running `program` (exec without fork). Returns the pid.
  int Exec(ck::CkApi& api, const ckisa::Program& program, uint8_t priority = 0);

  // Register a program image so guests can kSysSpawn it by index.
  uint32_t RegisterProgram(const ckisa::Program& program) {
    registered_programs_.push_back(program);
    return static_cast<uint32_t>(registered_programs_.size() - 1);
  }

  Process& process(int pid) { return *processes_[pid - 1]; }
  uint32_t process_count() const { return static_cast<uint32_t>(processes_.size()); }
  bool AllExited() const;

  // Swap a whole process to backing store: unload its thread and space,
  // page out its frames (section 2.1/2.3). Wake reloads on demand.
  void SwapOutProcess(ck::CkApi& api, int pid);
  void WakeProcess(ck::CkApi& api, int pid);

  uint64_t total_syscalls() const { return total_syscalls_; }

  // ---- AppKernel overrides ----
  ck::TrapAction HandleTrap(const ck::TrapForward& trap, ck::CkApi& api) override;

  // ---- checkpoint hooks (docs/CHECKPOINT.md) ----
  // The emulator's whole process table plus registered program images,
  // scheduler bookkeeping and pending sleep deadlines go into the kAppExtra
  // record; pids are part of the records, which is why they survive
  // migration ("processes resume with stable pids").
  void CaptureExtra(ckckpt::Writer& w, ck::CkApi& api) override;
  void RestoreExtra(ckckpt::Reader& r, ck::CkApi& api) override;
  // Swapped-out processes stay swapped after a restore; WakeProcess reloads
  // their threads on demand, exactly as on the source machine.
  bool ShouldReloadOnRestore(uint32_t thread_index) override;
  // After a whole-kernel swap-in (SwapIn / Checkpoint): restart the
  // scheduler threads -- their pre-swap wakeups hold stale ids -- and
  // reload the live process threads so execution continues promptly.
  void OnSwappedIn(ck::CkApi& api) override;

 protected:
  ck::HandlerAction OnIllegalAccess(const ck::FaultForward& fault, ck::CkApi& api) override;
  bool UseAsyncPaging() const override { return config_.async_paging; }
  void OnGuestFinished(uint32_t thread_index, ck::CkApi& api) override;

 private:
  class SchedulerProgram;

  Process* ProcessOfThread(uint64_t thread_cookie);
  void FinishSleep(ck::CkApi& api, int pid);
  // Zombie transition: wake waitpid waiters with the exit code.
  void NotifyExit(Process& proc, ck::CkApi& api);
  // Deliver a queued message into a blocked receiver's buffer.
  void CompleteRecv(Process& proc, ck::CkApi& api);

  UnixConfig config_;
  ck::CacheKernel& ck_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<SchedulerProgram>> schedulers_;
  std::vector<uint32_t> scheduler_threads_;  // thread index per scheduler
  std::vector<uint64_t> last_consumed_;  // per thread-index, for aging
  std::vector<ckisa::Program> registered_programs_;
  uint64_t total_syscalls_ = 0;
};

}  // namespace ckunix

#endif  // SRC_UNIXEMU_UNIX_EMULATOR_H_

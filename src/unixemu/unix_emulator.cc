#include "src/unixemu/unix_emulator.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/ckpt/serializer.h"

namespace ckunix {

using ck::CkApi;
using ck::HandlerAction;
using ck::TrapAction;
using ckbase::CkStatus;
using cksim::VirtAddr;

// Per-processor scheduling thread: "the UNIX emulator per-processor
// scheduling thread wakes up on each rescheduling interval, adjusts the
// priorities of other threads to enforce its policies, and goes back to
// sleep" (section 2.3). It is loaded at high priority and locked so it is
// assured of running.
class UnixEmulator::SchedulerProgram : public ck::NativeProgram {
 public:
  SchedulerProgram(UnixEmulator& emu, uint32_t cpu) : emu_(emu), cpu_(cpu) {}

  void set_thread_index(uint32_t index) { thread_index_ = index; }

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    CkApi& api = ctx.api();
    api.Charge(api.kernel().machine().cost().app_handler_base);
    bool reloaded_one = false;

    // Age compute-bound processes down, restore blocked/interactive ones.
    for (auto& proc : emu_.processes_) {
      if (proc->state != Process::State::kRunnable) {
        continue;
      }
      ckapp::ThreadRec& rec = emu_.thread(proc->thread_index);
      if (rec.native != nullptr || rec.finished) {
        continue;
      }
      if (!rec.loaded && !proc->swapped) {
        // The Cache Kernel reclaimed this runnable process's descriptor to
        // make room (the caching model at work). Reload it so the process
        // keeps making progress -- but admit at most ONE per tick per
        // processor, or the reloads just evict each other (swap thrash).
        if (rec.cpu_hint == cpu_ && !reloaded_one) {
          reloaded_one = true;
          emu_.EnsureThreadLoaded(api, proc->thread_index);
        }
        continue;
      }
      if (!rec.loaded) {
        continue;
      }
      ckbase::Result<ck::ThreadState> state = api.kernel().GetThreadState(rec.ck_id);
      if (!state.ok()) {
        continue;
      }
      // Per-processor scheduling: this thread belongs to another CPU's
      // scheduler (otherwise the replicas fight over priorities).
      ckbase::Result<uint32_t> on_cpu = api.kernel().GetThreadCpu(rec.ck_id);
      if (!on_cpu.ok() || on_cpu.value() != cpu_) {
        continue;
      }
      // Compute-bound detection: consumed a big slice of the interval since
      // the last tick without blocking.
      ckbase::Result<cksim::Cycles> live = api.kernel().GetThreadCpuConsumed(rec.ck_id);
      uint64_t consumed = rec.total_consumed + (live.ok() ? live.value() : 0);
      uint64_t last = proc->thread_index < emu_.last_consumed_.size()
                          ? emu_.last_consumed_[proc->thread_index]
                          : 0;
      bool compute_bound = state.value() != ck::ThreadState::kBlocked &&
                           consumed - last > emu_.config_.sched_interval / 4;
      if (proc->thread_index >= emu_.last_consumed_.size()) {
        emu_.last_consumed_.resize(proc->thread_index + 1, 0);
      }
      emu_.last_consumed_[proc->thread_index] = consumed;

      uint8_t target = compute_bound ? emu_.config_.batch_priority
                                     : emu_.config_.default_priority;
      if (rec.priority != target) {
        rec.priority = target;
        api.SetThreadPriority(rec.ck_id, target);
      }
    }

    // Back to sleep until the next rescheduling interval.
    ck::ThreadId self = ctx.self_thread();
    api.ScheduleAfter(emu_.config_.sched_interval,
                      [self](CkApi& later) { later.ResumeThread(self); });
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }

 private:
  UnixEmulator& emu_;
  uint32_t cpu_;
  uint32_t thread_index_ = 0;
};

UnixEmulator::UnixEmulator(ck::CacheKernel& ck, const UnixConfig& config)
    : ckapp::AppKernelBase("unix-emulator", config.backing_pages, config.backing_latency),
      config_(config),
      ck_(ck) {}

UnixEmulator::~UnixEmulator() = default;

void UnixEmulator::Start(CkApi& api) {
  if (!config_.run_scheduler_thread) {
    return;
  }
  // The emulator's own (kernel) space hosts its internal threads.
  uint32_t kernel_space = CreateSpace(api, /*locked=*/true);
  for (uint32_t c = 0; c < ck_.machine().cpu_count(); ++c) {
    auto sched = std::make_unique<SchedulerProgram>(*this, c);
    uint32_t index = CreateNativeThread(api, kernel_space, sched.get(),
                                        /*priority=*/30, /*locked=*/true,
                                        /*cpu_hint=*/static_cast<uint8_t>(c));
    sched->set_thread_index(index);
    scheduler_threads_.push_back(index);
    schedulers_.push_back(std::move(sched));
  }
}

int UnixEmulator::Exec(CkApi& api, const ckisa::Program& program, uint8_t priority) {
  auto proc = std::make_unique<Process>();
  proc->pid = static_cast<int>(processes_.size()) + 1;

  // New address space; program text+data from backing store on demand;
  // zero-fill stack and heap-to-come.
  proc->space_index = CreateSpace(api);
  LoadProgramImage(proc->space_index, program, /*writable=*/true);
  DefineZeroRegion(proc->space_index, config_.stack_top - config_.stack_pages * cksim::kPageSize,
                   config_.stack_pages, /*writable=*/true);
  proc->brk = config_.heap_base;

  ckapp::GuestThreadParams params;
  params.space_index = proc->space_index;
  params.entry = program.base;
  params.stack_top = config_.stack_top - 16;
  params.priority = priority != 0 ? priority : config_.default_priority;
  // Home processor: reloads stay on one CPU so exactly one scheduler thread
  // owns this process (per-processor scheduling, section 2.3).
  params.cpu_hint = static_cast<uint8_t>((proc->pid - 1) % ck_.machine().cpu_count());
  proc->thread_index = CreateGuestThread(api, params);

  processes_.push_back(std::move(proc));
  return static_cast<int>(processes_.size());
}

bool UnixEmulator::AllExited() const {
  for (const auto& proc : processes_) {
    if (proc->state != Process::State::kZombie) {
      return false;
    }
  }
  return !processes_.empty();
}

Process* UnixEmulator::ProcessOfThread(uint64_t thread_cookie) {
  for (auto& proc : processes_) {
    if (proc->thread_index == thread_cookie) {
      return proc.get();
    }
  }
  return nullptr;
}

TrapAction UnixEmulator::HandleTrap(const ck::TrapForward& trap, CkApi& api) {
  TrapAction action;
  Process* proc = ProcessOfThread(trap.thread_cookie);
  if (proc == nullptr) {
    action.action = HandlerAction::kTerminate;
    return action;
  }
  proc->syscalls++;
  total_syscalls_++;
  const cksim::CostModel& cost = ck_.machine().cost();

  switch (trap.number) {
    case kSysGetPid:
      // The stable UNIX pid, independent of Cache Kernel identifiers.
      action.has_return_value = true;
      action.return_value = static_cast<uint32_t>(proc->pid);
      break;

    case kSysExit:
      proc->state = Process::State::kZombie;
      proc->exit_code = static_cast<int>(trap.args[0]);
      NotifyExit(*proc, api);
      action.action = HandlerAction::kTerminate;
      break;

    case kSysWrite: {
      uint32_t len = std::min<uint32_t>(trap.args[1], 4096);
      std::vector<char> buf(len);
      if (len > 0 && ReadGuest(api, proc->space_index, trap.args[0], buf.data(), len)) {
        proc->console.append(buf.data(), len);
        api.Charge(cost.mem_word * (len / 4 + 1));
        action.has_return_value = true;
        action.return_value = len;
      } else {
        action.has_return_value = true;
        action.return_value = static_cast<uint32_t>(-1);
      }
      break;
    }

    case kSysSbrk: {
      uint32_t pages = trap.args[0];
      uint32_t old_brk = proc->brk;
      if (pages > 0 && pages < 65536) {
        DefineZeroRegion(proc->space_index, proc->brk, pages, /*writable=*/true);
        proc->brk += pages * cksim::kPageSize;
      }
      action.has_return_value = true;
      action.return_value = old_brk;
      break;
    }

    case kSysSleep: {
      cksim::Cycles duration =
          static_cast<cksim::Cycles>(trap.args[0]) * cksim::kCyclesPerMicrosecond;
      proc->state = Process::State::kSleeping;
      proc->sleep_until = api.now() + duration;
      int pid = proc->pid;
      ckapp::ThreadRec& rec = thread(proc->thread_index);
      if (duration >= kUnloadSleepThreshold) {
        // Long sleep: block, then unload the descriptor entirely -- it
        // consumes no Cache Kernel resources while sleeping (section 2.3).
        api.BlockThread(rec.ck_id);
        UnloadThreadByIndex(api, proc->thread_index);
        api.ScheduleAfter(duration, [this, pid](CkApi& later) { FinishSleep(later, pid); });
        action.action = HandlerAction::kBlock;  // thread already gone; no-op
      } else {
        api.ScheduleAfter(duration, [this, pid](CkApi& later) { FinishSleep(later, pid); });
        action.action = HandlerAction::kBlock;
      }
      break;
    }

    case kSysNice: {
      uint8_t priority = static_cast<uint8_t>(
          std::min<uint32_t>(trap.args[0], config_.default_priority));
      ckapp::ThreadRec& rec = thread(proc->thread_index);
      rec.priority = priority;
      api.SetThreadPriority(rec.ck_id, priority);
      action.has_return_value = true;
      action.return_value = priority;
      break;
    }

    case kSysSigSegv:
      proc->segv_handler = trap.args[0];
      action.has_return_value = true;
      action.return_value = 0;
      break;

    case kSysGetTime:
      action.has_return_value = true;
      action.return_value =
          static_cast<uint32_t>(api.now() / cksim::kCyclesPerMicrosecond);
      break;

    case kSysSpawn: {
      uint32_t index = trap.args[0];
      if (index >= registered_programs_.size()) {
        action.has_return_value = true;
        action.return_value = static_cast<uint32_t>(-1);
        break;
      }
      int child = Exec(api, registered_programs_[index]);
      action.has_return_value = true;
      action.return_value = static_cast<uint32_t>(child);
      break;
    }

    case kSysWaitPid: {
      int target = static_cast<int>(trap.args[0]);
      if (target < 1 || target > static_cast<int>(processes_.size())) {
        action.has_return_value = true;
        action.return_value = static_cast<uint32_t>(-1);
        break;
      }
      Process& child = process(target);
      if (child.state == Process::State::kZombie) {
        action.has_return_value = true;
        action.return_value = static_cast<uint32_t>(child.exit_code);
      } else {
        child.waiters.push_back(proc->pid);
        action.action = HandlerAction::kBlock;
      }
      break;
    }

    case kSysSend: {
      int dest = static_cast<int>(trap.args[0]);
      uint32_t len = std::min<uint32_t>(trap.args[2], 512);
      if (dest < 1 || dest > static_cast<int>(processes_.size())) {
        action.has_return_value = true;
        action.return_value = static_cast<uint32_t>(-1);
        break;
      }
      std::vector<uint8_t> message(len);
      if (len > 0 && !ReadGuest(api, proc->space_index, trap.args[1], message.data(), len)) {
        action.has_return_value = true;
        action.return_value = static_cast<uint32_t>(-1);
        break;
      }
      Process& receiver = process(dest);
      receiver.inbox.push_back(std::move(message));
      api.Charge(cost.mem_word * (len / 4 + 2));
      if (receiver.recv_blocked) {
        CompleteRecv(receiver, api);
      }
      action.has_return_value = true;
      action.return_value = len;
      break;
    }

    case kSysRecv: {
      proc->recv_buf = trap.args[0];
      proc->recv_max = std::min<uint32_t>(trap.args[1], 512);
      if (!proc->inbox.empty()) {
        // A message is already queued: deliver inline.
        std::vector<uint8_t> message = std::move(proc->inbox.front());
        proc->inbox.pop_front();
        uint32_t len =
            std::min<uint32_t>(static_cast<uint32_t>(message.size()), proc->recv_max);
        if (len > 0) {
          WriteGuest(api, proc->space_index, proc->recv_buf, message.data(), len);
        }
        action.has_return_value = true;
        action.return_value = len;
      } else {
        proc->recv_blocked = true;
        action.action = HandlerAction::kBlock;
      }
      break;
    }

    default:
      CKLOG(kDebug) << "unix: unknown syscall " << trap.number << " from pid " << proc->pid;
      proc->state = Process::State::kZombie;
      proc->exit_code = -1;
      NotifyExit(*proc, api);
      action.action = HandlerAction::kTerminate;
      break;
  }
  return action;
}

void UnixEmulator::NotifyExit(Process& proc, CkApi& api) {
  for (int waiter_pid : proc.waiters) {
    Process& waiter = process(waiter_pid);
    if (waiter.state != Process::State::kRunnable) {
      continue;
    }
    ckapp::ThreadRec& rec = thread(waiter.thread_index);
    if (!rec.loaded) {
      rec.was_blocked = true;
      if (EnsureThreadLoaded(api, waiter.thread_index) != CkStatus::kOk) {
        continue;
      }
    }
    api.ResumeThread(rec.ck_id, /*has_return=*/true,
                     static_cast<uint32_t>(proc.exit_code));
  }
  proc.waiters.clear();
}

void UnixEmulator::CompleteRecv(Process& proc, CkApi& api) {
  if (!proc.recv_blocked || proc.inbox.empty()) {
    return;
  }
  std::vector<uint8_t> message = std::move(proc.inbox.front());
  proc.inbox.pop_front();
  proc.recv_blocked = false;
  uint32_t len = std::min<uint32_t>(static_cast<uint32_t>(message.size()), proc.recv_max);
  if (len > 0) {
    WriteGuest(api, proc.space_index, proc.recv_buf, message.data(), len);
  }
  ckapp::ThreadRec& rec = thread(proc.thread_index);
  if (!rec.loaded) {
    rec.was_blocked = true;
    if (EnsureThreadLoaded(api, proc.thread_index) != CkStatus::kOk) {
      return;
    }
  }
  api.ResumeThread(rec.ck_id, /*has_return=*/true, len);
}

void UnixEmulator::FinishSleep(CkApi& api, int pid) {
  Process& proc = process(pid);
  if (proc.state != Process::State::kSleeping) {
    return;
  }
  proc.state = Process::State::kRunnable;
  proc.sleep_until = 0;
  ckapp::ThreadRec& rec = thread(proc.thread_index);
  if (!rec.loaded) {
    // Reload the descriptor (~230us in the paper; charged by the load path)
    // and complete the blocked sleep syscall.
    rec.was_blocked = true;
    if (EnsureThreadLoaded(api, proc.thread_index) != CkStatus::kOk) {
      return;
    }
  }
  api.ResumeThread(rec.ck_id, /*has_return=*/true, /*return_value=*/0);
}

HandlerAction UnixEmulator::OnIllegalAccess(const ck::FaultForward& fault, CkApi& api) {
  Process* proc = ProcessOfThread(fault.thread_cookie);
  if (proc == nullptr) {
    return AppKernelBase::OnIllegalAccess(fault, api);
  }
  paging_stats_.illegal_accesses++;
  if (proc->segv_handler != 0) {
    // Deliver SEGV: resume the thread at the user-registered handler with
    // the faulting address as argument (section 2.1's alternative to loading
    // a mapping).
    if (api.RedirectThread(fault.thread, proc->segv_handler, fault.fault.address) ==
        CkStatus::kOk) {
      return HandlerAction::kResume;
    }
  }
  proc->state = Process::State::kZombie;
  proc->exit_code = -11;  // SIGSEGV
  proc->segv_fault = true;
  NotifyExit(*proc, api);
  return HandlerAction::kTerminate;
}

void UnixEmulator::OnGuestFinished(uint32_t thread_index, CkApi& api) {
  Process* proc = ProcessOfThread(thread_index);
  if (proc != nullptr && proc->state != Process::State::kZombie) {
    proc->state = Process::State::kZombie;
    proc->exit_code = 0;
    NotifyExit(*proc, api);
  }
}

void UnixEmulator::CaptureExtra(ckckpt::Writer& w, CkApi& api) {
  // Config fingerprint: the restored instance must be constructed with the
  // same policy knobs or its paging/scheduling behavior would silently
  // diverge from the captured kernel's.
  w.U32(config_.backing_pages);
  w.U64(config_.backing_latency);
  w.Bool(config_.async_paging);
  w.U8(config_.default_priority);
  w.U8(config_.batch_priority);
  w.U64(config_.sched_interval);
  w.Bool(config_.run_scheduler_thread);
  w.U32(config_.stack_pages);
  w.U32(config_.heap_base);
  w.U32(config_.stack_top);

  w.U64(total_syscalls_);
  w.U32(static_cast<uint32_t>(last_consumed_.size()));
  for (uint64_t consumed : last_consumed_) {
    w.U64(consumed);
  }
  w.U32(static_cast<uint32_t>(scheduler_threads_.size()));
  for (uint32_t index : scheduler_threads_) {
    w.U32(index);
  }

  w.U32(static_cast<uint32_t>(registered_programs_.size()));
  for (const ckisa::Program& prog : registered_programs_) {
    w.U32(prog.base);
    w.U32(static_cast<uint32_t>(prog.words.size()));
    for (uint32_t word : prog.words) {
      w.U32(word);
    }
    w.U32(static_cast<uint32_t>(prog.labels.size()));
    for (const auto& [name, addr] : prog.labels) {
      w.Str(name);
      w.U32(addr);
    }
  }

  w.U32(static_cast<uint32_t>(processes_.size()));
  for (const auto& proc : processes_) {
    w.U32(static_cast<uint32_t>(proc->pid));
    w.U8(static_cast<uint8_t>(proc->state));
    w.U32(static_cast<uint32_t>(proc->exit_code));
    w.Bool(proc->segv_fault);
    w.U32(proc->space_index);
    w.U32(proc->thread_index);
    w.U32(proc->brk);
    w.U32(proc->segv_handler);
    w.Str(proc->console);
    w.U64(proc->syscalls);
    w.Bool(proc->swapped);
    w.U32(static_cast<uint32_t>(proc->waiters.size()));
    for (int waiter : proc->waiters) {
      w.U32(static_cast<uint32_t>(waiter));
    }
    w.U32(static_cast<uint32_t>(proc->inbox.size()));
    for (const std::vector<uint8_t>& message : proc->inbox) {
      w.U32(static_cast<uint32_t>(message.size()));
      w.Bytes(message.data(), message.size());
    }
    w.Bool(proc->recv_blocked);
    w.U32(proc->recv_buf);
    w.U32(proc->recv_max);
    // Pending sleeps become a relative deadline: the ScheduleAfter callback
    // dies with the source machine and is re-armed against the target clock.
    cksim::Cycles remaining =
        proc->sleep_until > api.now() ? proc->sleep_until - api.now() : 0;
    w.U64(remaining);
  }
}

void UnixEmulator::RestoreExtra(ckckpt::Reader& r, CkApi& api) {
  if (r.U32() != config_.backing_pages || r.U64() != config_.backing_latency ||
      r.Bool() != config_.async_paging || r.U8() != config_.default_priority ||
      r.U8() != config_.batch_priority || r.U64() != config_.sched_interval ||
      r.Bool() != config_.run_scheduler_thread || r.U32() != config_.stack_pages ||
      r.U32() != config_.heap_base || r.U32() != config_.stack_top) {
    r.Fail("unix emulator config mismatch between image and target instance");
    return;
  }
  if (!processes_.empty() || !schedulers_.empty()) {
    r.Fail("unix emulator target is not a fresh instance");
    return;
  }

  total_syscalls_ = r.U64();
  last_consumed_.assign(r.U32(), 0);
  for (uint64_t& consumed : last_consumed_) {
    consumed = r.U64();
  }
  std::vector<uint32_t> sched_indexes(r.U32(), 0);
  for (uint32_t& index : sched_indexes) {
    index = r.U32();
  }

  registered_programs_.clear();
  uint32_t program_count = r.U32();
  for (uint32_t i = 0; i < program_count && r.ok(); ++i) {
    ckisa::Program prog;
    prog.base = r.U32();
    prog.words.assign(r.U32(), 0);
    for (uint32_t& word : prog.words) {
      word = r.U32();
    }
    uint32_t label_count = r.U32();
    for (uint32_t l = 0; l < label_count && r.ok(); ++l) {
      std::string name = r.Str();
      prog.labels[name] = r.U32();
    }
    registered_programs_.push_back(std::move(prog));
  }

  uint32_t process_count = r.U32();
  for (uint32_t i = 0; i < process_count && r.ok(); ++i) {
    auto proc = std::make_unique<Process>();
    proc->pid = static_cast<int>(r.U32());
    proc->state = static_cast<Process::State>(r.U8());
    proc->exit_code = static_cast<int>(r.U32());
    proc->segv_fault = r.Bool();
    proc->space_index = r.U32();
    proc->thread_index = r.U32();
    proc->brk = r.U32();
    proc->segv_handler = r.U32();
    proc->console = r.Str();
    proc->syscalls = r.U64();
    proc->swapped = r.Bool();
    proc->waiters.assign(r.U32(), 0);
    for (int& waiter : proc->waiters) {
      waiter = static_cast<int>(r.U32());
    }
    uint32_t inbox_count = r.U32();
    for (uint32_t m = 0; m < inbox_count && r.ok(); ++m) {
      std::vector<uint8_t> message(r.U32());
      r.Bytes(message.data(), message.size());
      proc->inbox.push_back(std::move(message));
    }
    proc->recv_blocked = r.Bool();
    proc->recv_buf = r.U32();
    proc->recv_max = r.U32();
    cksim::Cycles remaining = r.U64();
    if (proc->state == Process::State::kSleeping) {
      // Re-arm the wakeup against this machine's clock. A deadline that
      // passed in flight fires on the next cycle.
      remaining = std::max<cksim::Cycles>(remaining, 1);
      proc->sleep_until = api.now() + remaining;
      int pid = proc->pid;
      api.ScheduleAfter(remaining, [this, pid](CkApi& later) { FinishSleep(later, pid); });
    }
    if (proc->thread_index >= thread_count() || proc->space_index >= space_count()) {
      r.Fail("process references a thread or space not in the image");
      return;
    }
    processes_.push_back(std::move(proc));
  }
  if (!r.ok()) {
    return;
  }

  // Recreate the per-processor scheduler threads: the native program objects
  // are host-side and cannot be serialized, so fresh ones rebind to the
  // restored (locked, high-priority) thread records.
  for (uint32_t index : sched_indexes) {
    if (index >= thread_count()) {
      r.Fail("scheduler thread index not in the image");
      return;
    }
    ckapp::ThreadRec& rec = thread(index);
    uint32_t cpu = std::min<uint32_t>(rec.cpu_hint, ck_.machine().cpu_count() - 1);
    auto sched = std::make_unique<SchedulerProgram>(*this, cpu);
    sched->set_thread_index(index);
    RebindNativeProgram(index, sched.get());
    // The ScheduleAfter that would have woken the blocked scheduler died
    // with the source machine; start it runnable so Step() re-arms it.
    rec.was_blocked = false;
    scheduler_threads_.push_back(index);
    schedulers_.push_back(std::move(sched));
  }
}

void UnixEmulator::OnSwappedIn(CkApi& api) {
  for (uint32_t index : scheduler_threads_) {
    ckapp::ThreadRec& rec = thread(index);
    // The ScheduleAfter wakeup armed before the swap names the old (stale)
    // thread id; restart the scheduler runnable so its Step() re-arms.
    rec.was_blocked = false;
    EnsureThreadLoaded(api, index);
  }
  for (const auto& proc : processes_) {
    if (proc->state == Process::State::kZombie || proc->swapped) {
      continue;
    }
    ckapp::ThreadRec& rec = thread(proc->thread_index);
    if (!rec.finished) {
      EnsureThreadLoaded(api, proc->thread_index);
    }
  }
}

bool UnixEmulator::ShouldReloadOnRestore(uint32_t thread_index) {
  for (const auto& proc : processes_) {
    if (proc->thread_index == thread_index) {
      return !proc->swapped;
    }
  }
  return true;
}

void UnixEmulator::SwapOutProcess(CkApi& api, int pid) {
  Process& proc = process(pid);
  if (proc.state == Process::State::kZombie || proc.swapped) {
    return;
  }
  // Unload the thread, then the address space (all its mappings write back),
  // then page every resident frame out so the memory is reusable.
  UnloadThreadByIndex(api, proc.thread_index);
  ckapp::VSpace& sp = space(proc.space_index);
  if (sp.loaded) {
    api.UnloadSpace(sp.ck_id);
  }
  std::vector<VirtAddr> resident(sp.resident_fifo.begin(), sp.resident_fifo.end());
  for (VirtAddr vaddr : resident) {
    EvictPage(api, proc.space_index, vaddr);
  }
  proc.swapped = true;
}

void UnixEmulator::WakeProcess(CkApi& api, int pid) {
  Process& proc = process(pid);
  if (!proc.swapped) {
    return;
  }
  proc.swapped = false;
  // Reload the thread (which reloads the space); pages fault back in on
  // demand.
  EnsureThreadLoaded(api, proc.thread_index);
}

}  // namespace ckunix

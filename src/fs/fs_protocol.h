// Wire protocol of the distributed cached file service (docs/FILESERVICE.md).
//
// The paper moves file service out of the kernel into application kernels
// (section 3: "application kernels as servers"); this protocol is what the
// file-server kernel (src/fs/file_server.h) and the client page caches
// (src/fs/client_cache.h) speak over one fiber-channel link per client:
//
//   * control plane: object-oriented RPC (ckapp::RpcEndpoint) over the
//     link's packet slots -- open/stat/read/write/readdir/register from the
//     client, invalidate pushes from the server. Both directions share one
//     reception ring, demultiplexed by the RPC reply bit.
//   * data plane: page contents ship over the link's bulk streaming path
//     (FiberChannelDevice::SendBulk), one payload per page, each prefixed
//     with a BulkPageHeader naming the (fileid, version, page) it carries.
//     A 4 KiB page plus headers does not fit a 4 KiB message slot (the DSM
//     kernel fragments instead); the bulk path is the scatter-gather
//     streaming mode a real file server would use anyway.
//
// Files are named by a (fileid, version) pair -- the qid/qid.vers analogue
// of 9front's mount cache. Every server-side write bumps the version, so a
// client can validate cached pages by comparing versions and drop stale
// bitmaps without re-reading data.
//
// All wire structs are little-endian PODs, memcpy'd on and off the wire.

#ifndef SRC_FS_FS_PROTOCOL_H_
#define SRC_FS_FS_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace ckfs {

// RPC operation codes (request direction in parentheses).
inline constexpr uint32_t kOpOpen = 0x0f01;        // client -> server
inline constexpr uint32_t kOpStat = 0x0f02;        // client -> server
inline constexpr uint32_t kOpRead = 0x0f03;        // client -> server
inline constexpr uint32_t kOpWrite = 0x0f04;       // client -> server
inline constexpr uint32_t kOpReaddir = 0x0f05;     // client -> server
inline constexpr uint32_t kOpRegister = 0x0f06;    // client -> server
inline constexpr uint32_t kOpInvalidate = 0x0f07;  // server -> client

// Open request payload is the file name's bytes; stat request is a FileId.
struct FileIdMsg {
  uint32_t fileid = 0;
};

// Open/stat reply. status != 0 means the lookup failed and the other fields
// are meaningless.
struct AttrReply {
  uint32_t fileid = 0;
  uint32_t version = 0;
  uint32_t size = 0;  // bytes
  uint32_t status = 0;
};

// Read request: fetch `pages` pages starting at `first_page`. The server
// clamps the range to the file's current extent, acks with a ReadReply, and
// ships each granted page as one bulk payload (BulkPageHeader + bytes).
struct ReadRequest {
  uint32_t fileid = 0;
  uint32_t first_page = 0;
  uint32_t pages = 1;
};

struct ReadReply {
  uint32_t fileid = 0;
  uint32_t version = 0;  // version the granted pages will carry
  uint32_t size = 0;     // current file size (keeps client attrs fresh)
  uint32_t first_page = 0;
  uint32_t granted = 0;  // pages actually shipped (0: range beyond EOF)
};

// Write request header; `len` data bytes follow. The server applies the
// write, bumps the file version and pushes kOpInvalidate to every other
// registered client (best effort -- the version check at the client is what
// guarantees staleness is caught).
struct WriteRequest {
  uint32_t fileid = 0;
  uint32_t offset = 0;
  uint32_t len = 0;
};

struct WriteReply {
  uint32_t fileid = 0;
  uint32_t version = 0;  // version after the write
  uint32_t status = 0;
};

// Readdir request/reply: a window of the (flat) namespace. Each entry is a
// DirEntry followed by name_len name bytes; `count` entries fit whatever the
// message slot allows.
struct ReaddirRequest {
  uint32_t start = 0;
  uint32_t max_entries = 16;
};

struct ReaddirReplyHeader {
  uint32_t count = 0;
  uint32_t total = 0;  // files in the namespace
};

struct DirEntry {
  uint32_t fileid = 0;
  uint32_t version = 0;
  uint32_t size = 0;
  uint32_t name_len = 0;
};

// Server -> client invalidation push: `fileid` is now at `version`; drop any
// valid-page bitmap cached under an older version.
struct InvalidateMsg {
  uint32_t fileid = 0;
  uint32_t version = 0;
};

// Header embedded at the front of every bulk page payload.
inline constexpr uint32_t kBulkMagic = 0x636b4653;  // "ckFS"

struct BulkPageHeader {
  uint32_t magic = kBulkMagic;
  uint32_t fileid = 0;
  uint32_t version = 0;
  uint32_t page = 0;
  uint32_t len = 0;  // payload bytes (< page size for the file's tail page)
};

// POD <-> wire helpers.
template <typename T>
void AppendPod(std::vector<uint8_t>& wire, const T& value) {
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(&value);
  wire.insert(wire.end(), raw, raw + sizeof(T));
}

template <typename T>
bool ReadPod(const std::vector<uint8_t>& wire, size_t offset, T* out) {
  if (wire.size() < offset + sizeof(T)) {
    return false;
  }
  std::memcpy(out, wire.data() + offset, sizeof(T));
  return true;
}

}  // namespace ckfs

#endif  // SRC_FS_FS_PROTOCOL_H_

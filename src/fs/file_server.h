// File-server application kernel: an in-memory versioned file store served
// over memory-based messaging (docs/FILESERVICE.md).
//
// The Cache Kernel keeps no file abstraction; "OS services such as ... file
// service are provided by server application kernels" (section 3). This
// kernel is that server: it holds a flat namespace of (fileid, version)
// files and serves open/stat/read/write/readdir over one RPC endpoint per
// client fiber-channel link, shipping page contents on the link's bulk
// streaming path. Every write bumps the file's version and pushes
// best-effort kOpInvalidate notifications to the other registered clients
// -- the client-side version check is what actually guarantees staleness is
// caught (src/fs/client_cache.h).

#ifndef SRC_FS_FILE_SERVER_H_
#define SRC_FS_FILE_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/appkernel/channel.h"
#include "src/fs/fs_protocol.h"
#include "src/sim/devices.h"

namespace ckfs {

struct FsServerStats {
  uint64_t opens = 0;
  uint64_t stats = 0;
  uint64_t reads = 0;          // read RPCs served
  uint64_t pages_shipped = 0;  // bulk payloads sent
  uint64_t writes = 0;
  uint64_t readdirs = 0;
  uint64_t invalidations_sent = 0;
  uint64_t bad_requests = 0;
};

class FileServerKernel : public ckapp::AppKernelBase {
 public:
  explicit FileServerKernel(ck::CacheKernel& ck);
  ~FileServerKernel() override;

  // Create or replace a file (pre-run population). Returns its fileid.
  // Fileids are dense, starting at 1.
  uint32_t AddFile(const std::string& name, std::vector<uint8_t> bytes);

  // Server-local write (tests / management plane): applies bytes, bumps the
  // version and -- when `api` is non-null -- pushes invalidations exactly
  // like a client write would.
  bool WriteLocal(uint32_t fileid, uint32_t offset, const void* data, uint32_t len,
                  ck::CkApi* api);

  // Create the server's (locked) address space. Call once, before the first
  // AttachClient.
  void Setup(ck::CkApi& api);

  // Wire one client link: configures an outbound channel over the device's
  // transmit slots and an inbound channel over its reception ring, creates
  // the link's RPC endpoint and its (locked) endpoint thread, and primes the
  // receiver mappings. Returns the link index.
  uint32_t AttachClient(ck::CkApi& api, cksim::FiberChannelDevice* device);

  uint32_t link_count() const { return static_cast<uint32_t>(links_.size()); }
  ckapp::RpcEndpoint& link_endpoint(uint32_t link) { return *links_[link]->endpoint; }

  const FsServerStats& fs_stats() const { return stats_; }
  uint32_t file_count() const { return static_cast<uint32_t>(files_.size()); }
  uint32_t file_version(uint32_t fileid) const;
  uint32_t file_size(uint32_t fileid) const;
  const std::string& file_name(uint32_t fileid) const;

 private:
  struct FileRec {
    std::string name;
    uint32_t version = 1;
    std::vector<uint8_t> bytes;
  };

  struct ClientLink {
    cksim::FiberChannelDevice* device = nullptr;
    ckapp::MessageChannel out;
    ckapp::MessageChannel in;
    std::unique_ptr<ckapp::RpcEndpoint> endpoint;
    uint32_t endpoint_thread = 0;
    bool registered = false;  // receives invalidation pushes
  };

  FileRec* Find(uint32_t fileid);
  const FileRec* Find(uint32_t fileid) const;

  std::vector<uint8_t> Serve(uint32_t link_index, uint32_t op,
                             const std::vector<uint8_t>& request, ck::CkApi& api);
  std::vector<uint8_t> ServeOpen(const std::vector<uint8_t>& request);
  std::vector<uint8_t> ServeStat(const std::vector<uint8_t>& request);
  std::vector<uint8_t> ServeRead(uint32_t link_index, const std::vector<uint8_t>& request,
                                 ck::CkApi& api);
  std::vector<uint8_t> ServeWrite(uint32_t link_index, const std::vector<uint8_t>& request,
                                  ck::CkApi& api);
  std::vector<uint8_t> ServeReaddir(const std::vector<uint8_t>& request);

  // Push kOpInvalidate for `fileid` to every registered link except
  // `exclude_link` (the writer learns the new version from its write reply).
  void PushInvalidations(ck::CkApi& api, uint32_t fileid, uint32_t exclude_link);

  ck::CacheKernel& ck_;
  uint32_t space_index_ = 0;
  bool setup_done_ = false;
  std::vector<FileRec> files_;  // fileid - 1 indexes this
  std::vector<std::unique_ptr<ClientLink>> links_;
  FsServerStats stats_;
};

}  // namespace ckfs

#endif  // SRC_FS_FILE_SERVER_H_

#include "src/fs/client_cache.h"

#include <cstring>

namespace ckfs {

using ck::CkApi;
using cksim::kPageSize;

namespace {

// Virtual layout of the cache's channel windows inside its (dedicated) space.
constexpr cksim::VirtAddr kFsOutVBase = 0x30000000;
constexpr cksim::VirtAddr kFsInVBase = 0x30100000;

// Simulated CPU cost of copying one cached page to the caller.
constexpr cksim::Cycles kHitCopyCost = 150;

uint32_t PopCount(uint64_t bits) {
  uint32_t n = 0;
  while (bits != 0) {
    bits &= bits - 1;
    ++n;
  }
  return n;
}

}  // namespace

// The link's endpoint thread. RpcEndpoint handles the packet plane (our
// replies, the server's invalidation pushes); on top of that the pump polls
// the device's bulk queue, because bulk deliveries raise no signal: it
// spins (kYield) whenever read acks have announced payloads that have not
// been polled yet, and blocks otherwise. Acks travel the packet path
// (due = send + latency) while their payloads add serialization time on
// top, so the ack's signal always wakes the pump before the first payload
// is due -- the pump never blocks through a delivery.
class ClientFileCache::Pump : public ckapp::RpcEndpoint {
 public:
  explicit Pump(ClientFileCache& cache)
      : ckapp::RpcEndpoint(
            cache.out_, cache.in_,
            [&cache](uint32_t op, const std::vector<uint8_t>& request, CkApi& api) {
              return cache.ServePeer(op, request, api);
            }),
        cache_(cache) {}

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    cache_.DrainBulk(ctx.api());
    ck::NativeOutcome outcome;
    outcome.action = cache_.TransfersPending() ? ck::NativeOutcome::Action::kYield
                                               : ck::NativeOutcome::Action::kBlock;
    return outcome;
  }

  void OnSignal(cksim::VirtAddr message_addr, ck::NativeCtx& ctx) override {
    ckapp::RpcEndpoint::OnSignal(message_addr, ctx);
    cache_.DrainBulk(ctx.api());
  }

 private:
  ClientFileCache& cache_;
};

ClientFileCache::ClientFileCache(ckapp::AppKernelBase& owner, ck::CacheKernel& ck,
                                 const Config& config)
    : owner_(owner), ck_(ck), config_(config) {
  if (config_.max_file_pages > 64) {
    config_.max_file_pages = 64;  // bitmap width
  }
  entries_.resize(config_.entries);
  for (uint32_t i = 0; i < kHashBuckets; ++i) {
    hash_[i] = kNone;
  }
}

ClientFileCache::~ClientFileCache() {
  for (Entry& entry : entries_) {
    for (cksim::PhysAddr frame : entry.frames) {
      if (frame != 0) {
        owner_.frames().Release(frame);
      }
    }
  }
}

void ClientFileCache::Bind(CkApi& api, uint32_t space_index,
                           cksim::FiberChannelDevice* device) {
  device_ = device;
  pump_ = std::make_unique<Pump>(*this);
  pump_thread_ = owner_.CreateNativeThread(api, space_index, pump_.get(),
                                           /*priority=*/26, /*locked=*/true);
  out_.ConfigureSender(owner_, space_index, kFsOutVBase, device->tx_slot(0),
                       device->tx_slot_count());
  in_.ConfigureReceiver(owner_, space_index, kFsInVBase, device->rx_slot(0),
                        device->rx_slot_count(), pump_thread_);
  in_.PrimeReceiver(api);
  pump_->Call(api, kOpRegister, std::vector<uint8_t>(),
              [this](const std::vector<uint8_t>&, CkApi&) { registered_ = true; });
}

// ---- hashed-LRU entry table ----

ClientFileCache::Entry* ClientFileCache::Lookup(uint32_t fileid) {
  for (uint32_t i = hash_[fileid % kHashBuckets]; i != kNone; i = entries_[i].hash_next) {
    if (entries_[i].fileid == fileid) {
      return &entries_[i];
    }
  }
  return nullptr;
}

const ClientFileCache::Entry* ClientFileCache::Lookup(uint32_t fileid) const {
  for (uint32_t i = hash_[fileid % kHashBuckets]; i != kNone; i = entries_[i].hash_next) {
    if (entries_[i].fileid == fileid) {
      return &entries_[i];
    }
  }
  return nullptr;
}

void ClientFileCache::LruUnlink(Entry& entry) {
  uint32_t index = IndexOf(entry);
  if (entry.lru_prev != kNone) {
    entries_[entry.lru_prev].lru_next = entry.lru_next;
  } else if (lru_head_ == index) {
    lru_head_ = entry.lru_next;
  }
  if (entry.lru_next != kNone) {
    entries_[entry.lru_next].lru_prev = entry.lru_prev;
  } else if (lru_tail_ == index) {
    lru_tail_ = entry.lru_prev;
  }
  entry.lru_prev = kNone;
  entry.lru_next = kNone;
}

void ClientFileCache::LruPushFront(Entry& entry) {
  uint32_t index = IndexOf(entry);
  entry.lru_prev = kNone;
  entry.lru_next = lru_head_;
  if (lru_head_ != kNone) {
    entries_[lru_head_].lru_prev = index;
  }
  lru_head_ = index;
  if (lru_tail_ == kNone) {
    lru_tail_ = index;
  }
}

void ClientFileCache::Touch(Entry& entry) {
  LruUnlink(entry);
  LruPushFront(entry);
}

void ClientFileCache::HashRemove(Entry& entry) {
  uint32_t index = IndexOf(entry);
  uint32_t* link = &hash_[entry.fileid % kHashBuckets];
  while (*link != kNone) {
    if (*link == index) {
      *link = entry.hash_next;
      return;
    }
    link = &entries_[*link].hash_next;
  }
}

void ClientFileCache::DropEntry(Entry& entry) {
  for (cksim::PhysAddr& frame : entry.frames) {
    if (frame != 0) {
      owner_.frames().Release(frame);
      frame = 0;
    }
  }
  HashRemove(entry);
  LruUnlink(entry);
  entry = Entry{};
}

bool ClientFileCache::EvictOne(uint32_t keep_fileid) {
  // Walk from the LRU tail; entries with transfers in flight are pinned
  // (their bulk payloads would have nowhere to land their bookkeeping).
  for (uint32_t i = lru_tail_; i != kNone; i = entries_[i].lru_prev) {
    Entry& victim = entries_[i];
    if (victim.fileid == 0 || victim.fileid == keep_fileid || victim.inflight != 0) {
      continue;
    }
    DropEntry(victim);
    ++stats_.evictions;
    return true;
  }
  return false;
}

ClientFileCache::Entry* ClientFileCache::Insert(uint32_t fileid) {
  Entry* slot = nullptr;
  for (Entry& entry : entries_) {
    if (entry.fileid == 0) {
      slot = &entry;
      break;
    }
  }
  if (slot == nullptr) {
    if (!EvictOne(/*keep_fileid=*/0)) {
      return nullptr;  // every entry pinned by in-flight transfers
    }
    for (Entry& entry : entries_) {
      if (entry.fileid == 0) {
        slot = &entry;
        break;
      }
    }
  }
  *slot = Entry{};
  slot->fileid = fileid;
  slot->frames.assign(config_.max_file_pages, 0);
  uint32_t bucket = fileid % kHashBuckets;
  slot->hash_next = hash_[bucket];
  hash_[bucket] = IndexOf(*slot);
  LruPushFront(*slot);
  return slot;
}

cksim::PhysAddr ClientFileCache::FrameFor(Entry& entry, uint32_t page) {
  if (entry.frames[page] != 0) {
    return entry.frames[page];
  }
  cksim::PhysAddr frame = owner_.frames().Allocate();
  while (frame == 0) {
    if (!EvictOne(entry.fileid)) {
      return 0;  // pool dry and nothing evictable; caller drops the page
    }
    frame = owner_.frames().Allocate();
  }
  entry.frames[page] = frame;
  return frame;
}

// ---- version plane ----

void ClientFileCache::Invalidate(Entry& entry, uint32_t new_version) {
  for (cksim::PhysAddr& frame : entry.frames) {
    if (frame != 0) {
      owner_.frames().Release(frame);
      frame = 0;
    }
  }
  entry.valid = 0;
  entry.prefetched = 0;
  entry.demand_fill = 0;
  entry.version = new_version;
  ++stats_.invalidations;
  ck_.ChargeFs(owner_.self(), ck::FsCounter::kInvalidation);
}

void ClientFileCache::ApplyAttrs(const AttrReply& attr, const std::string& name) {
  Entry* entry = Lookup(attr.fileid);
  if (entry == nullptr) {
    entry = Insert(attr.fileid);
  }
  if (entry == nullptr) {
    return;  // table fully pinned; next open retries
  }
  if (entry->version != 0 && entry->version != attr.version) {
    Invalidate(*entry, attr.version);
  }
  entry->version = attr.version;
  entry->size = attr.size;
  if (!name.empty()) {
    entry->name = name;
  }
  Touch(*entry);
}

// ---- control plane ----

ClientFileCache::Status ClientFileCache::Open(CkApi& api, const std::string& name,
                                              uint32_t* fileid) {
  auto pending = open_pending_.find(name);
  if (pending != open_pending_.end()) {
    if (pending->second) {
      return Status::kPending;
    }
    open_pending_.erase(pending);
    auto it = name_to_fileid_.find(name);
    if (it == name_to_fileid_.end() || it->second == 0) {
      name_to_fileid_.erase(name);
      return Status::kError;
    }
    *fileid = it->second;
    return Status::kHit;
  }
  auto it = name_to_fileid_.find(name);
  if (it != name_to_fileid_.end() && it->second != 0 && Lookup(it->second) != nullptr) {
    *fileid = it->second;  // attrs cached: zero wire traffic
    return Status::kHit;
  }
  std::vector<uint8_t> wire(name.begin(), name.end());
  ++stats_.opens;
  open_pending_[name] = true;
  pump_->Call(api, kOpOpen, wire,
              [this, name](const std::vector<uint8_t>& reply, CkApi&) {
                open_pending_[name] = false;
                AttrReply attr;
                if (ReadPod(reply, 0, &attr) && attr.status == 0) {
                  name_to_fileid_[name] = attr.fileid;
                  ApplyAttrs(attr, name);
                } else {
                  name_to_fileid_[name] = 0;
                }
              });
  return Status::kPending;
}

ClientFileCache::Status ClientFileCache::Stat(CkApi& api, uint32_t fileid) {
  auto pending = stat_pending_.find(fileid);
  if (pending != stat_pending_.end()) {
    if (pending->second) {
      return Status::kPending;
    }
    stat_pending_.erase(pending);
    return Status::kHit;
  }
  std::vector<uint8_t> wire;
  AppendPod(wire, FileIdMsg{fileid});
  stat_pending_[fileid] = true;
  pump_->Call(api, kOpStat, wire,
              [this, fileid](const std::vector<uint8_t>& reply, CkApi&) {
                stat_pending_[fileid] = false;
                AttrReply attr;
                if (ReadPod(reply, 0, &attr)) {
                  if (attr.status == 0) {
                    ApplyAttrs(attr, std::string());
                  } else {
                    Entry* entry = Lookup(fileid);
                    if (entry != nullptr && entry->inflight == 0) {
                      DropEntry(*entry);  // file disappeared server-side
                    }
                  }
                }
              });
  return Status::kPending;
}

ClientFileCache::Status ClientFileCache::Write(CkApi& api, uint32_t fileid, uint32_t offset,
                                               const void* data, uint32_t len) {
  auto pending = write_pending_.find(fileid);
  if (pending != write_pending_.end()) {
    if (pending->second) {
      return Status::kPending;
    }
    write_pending_.erase(pending);
    return Status::kHit;
  }
  constexpr size_t kBudget = ckapp::MessageChannel::kMaxMessage - sizeof(ckapp::RpcHeader);
  if (sizeof(WriteRequest) + len > kBudget) {
    return Status::kError;
  }
  std::vector<uint8_t> wire;
  AppendPod(wire, WriteRequest{fileid, offset, len});
  const uint8_t* raw = static_cast<const uint8_t*>(data);
  wire.insert(wire.end(), raw, raw + len);
  write_pending_[fileid] = true;
  uint32_t end = offset + len;
  pump_->Call(api, kOpWrite, wire,
              [this, fileid, end](const std::vector<uint8_t>& reply, CkApi&) {
                write_pending_[fileid] = false;
                WriteReply ack;
                if (ReadPod(reply, 0, &ack) && ack.status == 0) {
                  Entry* entry = Lookup(fileid);
                  if (entry != nullptr) {
                    // Our own pages are stale now too: write-through, no
                    // local update, re-read under the new version.
                    if (entry->version != ack.version) {
                      Invalidate(*entry, ack.version);
                    }
                    if (end > entry->size) {
                      entry->size = end;
                    }
                  }
                }
              });
  return Status::kPending;
}

ClientFileCache::Status ClientFileCache::Readdir(CkApi& api, DirListing* out) {
  if (readdir_ready_) {
    *out = readdir_result_;
    readdir_ready_ = false;
    return Status::kHit;
  }
  if (readdir_pending_) {
    return Status::kPending;
  }
  readdir_pending_ = true;
  std::vector<uint8_t> wire;
  AppendPod(wire, ReaddirRequest{0, 64});
  pump_->Call(api, kOpReaddir, wire,
              [this](const std::vector<uint8_t>& reply, CkApi&) {
                readdir_pending_ = false;
                readdir_result_ = DirListing{};
                ReaddirReplyHeader header;
                if (ReadPod(reply, 0, &header)) {
                  size_t offset = sizeof(header);
                  for (uint32_t i = 0; i < header.count; ++i) {
                    DirEntry entry;
                    if (!ReadPod(reply, offset, &entry)) {
                      break;
                    }
                    offset += sizeof(entry);
                    if (reply.size() < offset + entry.name_len) {
                      break;
                    }
                    readdir_result_.entries.push_back(entry);
                    readdir_result_.names.emplace_back(reply.begin() + offset,
                                                       reply.begin() + offset + entry.name_len);
                    offset += entry.name_len;
                  }
                }
                readdir_ready_ = true;
              });
  return Status::kPending;
}

// ---- data plane ----

ClientFileCache::Status ClientFileCache::Read(CkApi& api, uint32_t fileid, uint32_t page,
                                              void* out, uint32_t* len) {
  Entry* entry = Lookup(fileid);
  if (entry == nullptr) {
    return Status::kError;
  }
  if (page >= config_.max_file_pages) {
    // Beyond the bitmap width: EOF if the file really ends there, error if
    // the file outgrows what this cache can map.
    if (page * static_cast<uint64_t>(kPageSize) >= entry->size) {
      *len = 0;
      return Status::kHit;
    }
    return Status::kError;
  }
  uint64_t bit = 1ull << page;
  if ((entry->valid & bit) != 0) {
    NoteAccess(*entry, page);
    Touch(*entry);
    if ((entry->prefetched & bit) != 0) {
      entry->prefetched &= ~bit;
      ++stats_.readahead_useful;
      ck_.ChargeFs(owner_.self(), ck::FsCounter::kReadaheadUseful);
    }
    uint32_t offset = page * kPageSize;
    uint32_t want = entry->size > offset ? entry->size - offset : 0;
    if (want > kPageSize) {
      want = kPageSize;
    }
    api.ReadPhys(entry->frames[page], out, kPageSize);
    // Pool-held cache pages carry no PTE referenced bit; this soft touch is
    // their equivalent recency evidence for tier promotion (docs/TIERING.md).
    api.TierTouch(entry->frames[page]);
    api.Charge(kHitCopyCost);
    *len = want;
    if ((entry->demand_fill & bit) != 0) {
      // The successful poll that completes a demand miss: the miss was
      // already counted, so this access is not a cache hit.
      entry->demand_fill &= ~bit;
    } else {
      ++stats_.hits;
      ck_.ChargeFs(owner_.self(), ck::FsCounter::kHit);
    }
    MaybeReadahead(api, *entry, page);
    return Status::kHit;
  }
  if (page * kPageSize >= entry->size) {
    *len = 0;  // at/after EOF as far as the cached attrs know
    return Status::kHit;
  }
  if ((entry->inflight & bit) != 0) {
    ++stats_.demand_stalls;  // waiting on the wire
    return Status::kPending;
  }
  NoteAccess(*entry, page);
  Touch(*entry);
  ++stats_.misses;
  ck_.ChargeFs(owner_.self(), ck::FsCounter::kMiss);
  IssueRead(api, *entry, page, /*readahead=*/false);
  MaybeReadahead(api, *entry, page);
  return Status::kPending;
}

void ClientFileCache::NoteAccess(Entry& entry, uint32_t page) {
  entry.seq_run = (entry.last_page != ~0u && page == entry.last_page + 1)
                      ? entry.seq_run + 1
                      : 1;
  entry.last_page = page;
}

void ClientFileCache::IssueRead(CkApi& api, Entry& entry, uint32_t page, bool readahead) {
  uint64_t bit = 1ull << page;
  entry.inflight |= bit;
  if (readahead) {
    entry.ra_request |= bit;
    ++stats_.readahead_issued;
    ck_.ChargeFs(owner_.self(), ck::FsCounter::kReadaheadIssued);
  }
  ++outstanding_rpcs_;
  std::vector<uint8_t> wire;
  AppendPod(wire, ReadRequest{entry.fileid, page, 1});
  uint32_t fileid = entry.fileid;
  pump_->Call(api, kOpRead, wire,
              [this, fileid, page](const std::vector<uint8_t>& reply, CkApi&) {
                --outstanding_rpcs_;
                ReadReply ack;
                if (!ReadPod(reply, 0, &ack)) {
                  return;
                }
                Entry* e = Lookup(fileid);
                if (e != nullptr) {
                  uint64_t b = 1ull << page;
                  if (ack.granted == 0) {
                    e->inflight &= ~b;
                    e->ra_request &= ~b;
                  }
                  if (ack.version != 0 && e->version != ack.version) {
                    // The server has moved on; drop what we hold and adopt
                    // the version the in-flight payloads will carry.
                    Invalidate(*e, ack.version);
                  }
                  if (ack.version != 0) {
                    e->size = ack.size;
                  }
                }
                // The ack announces payloads on the bulk path; the pump
                // spins until it has polled them all.
                bulk_expected_ += ack.granted;
              });
}

void ClientFileCache::MaybeReadahead(CkApi& api, Entry& entry, uint32_t page) {
  if (!config_.readahead || entry.seq_run < config_.min_seq_run) {
    return;
  }
  uint32_t pages = PagesOf(entry);
  for (uint32_t p = page + 1; p <= page + config_.readahead_window && p < pages; ++p) {
    uint64_t bit = 1ull << p;
    if ((entry.valid & bit) != 0 || (entry.inflight & bit) != 0) {
      continue;
    }
    if (outstanding_rpcs_ >= config_.max_outstanding) {
      break;  // stay below the reception ring's capacity
    }
    IssueRead(api, entry, p, /*readahead=*/true);
  }
}

void ClientFileCache::DrainBulk(CkApi& api) {
  if (device_ == nullptr) {
    return;
  }
  std::vector<uint8_t> blob;
  while (device_->PollBulk(&blob, api.now())) {
    InstallBulk(api, blob);
  }
}

void ClientFileCache::InstallBulk(CkApi& api, const std::vector<uint8_t>& blob) {
  BulkPageHeader header;
  if (!ReadPod(blob, 0, &header) || header.magic != kBulkMagic ||
      blob.size() < sizeof(header) + header.len) {
    return;  // not a file-service payload
  }
  if (bulk_expected_ > 0) {
    --bulk_expected_;
  }
  Entry* entry = Lookup(header.fileid);
  if (entry == nullptr || header.page >= config_.max_file_pages) {
    return;
  }
  uint64_t bit = 1ull << header.page;
  bool was_readahead = (entry->ra_request & bit) != 0;
  entry->inflight &= ~bit;
  entry->ra_request &= ~bit;
  if (header.version != entry->version) {
    // Stale payload (an invalidation or fresher ack moved the entry's
    // version while this page was on the wire). Never install it: this is
    // the guarantee that read-ahead cannot surface old data.
    ++stats_.stale_bulk_dropped;
    return;
  }
  cksim::PhysAddr frame = FrameFor(*entry, header.page);
  if (frame == 0) {
    return;  // no frame; the page stays absent and a later read re-misses
  }
  api.ZeroPage(frame);
  if (header.len > 0) {
    api.WritePhys(frame, blob.data() + sizeof(header), header.len);
  }
  entry->valid |= bit;
  if (was_readahead) {
    entry->prefetched |= bit;
  } else {
    entry->demand_fill |= bit;
  }
}

std::vector<uint8_t> ClientFileCache::ServePeer(uint32_t op,
                                                const std::vector<uint8_t>& request,
                                                CkApi& api) {
  (void)api;
  if (op == kOpInvalidate) {
    InvalidateMsg msg;
    if (ReadPod(request, 0, &msg)) {
      Entry* entry = Lookup(msg.fileid);
      if (entry != nullptr && entry->version != msg.version) {
        Invalidate(*entry, msg.version);
      }
    }
  }
  return {};
}

// ---- introspection ----

bool ClientFileCache::PageCached(uint32_t fileid, uint32_t page) const {
  const Entry* entry = Lookup(fileid);
  return entry != nullptr && page < 64 && (entry->valid & (1ull << page)) != 0;
}

uint32_t ClientFileCache::CachedPages(uint32_t fileid) const {
  const Entry* entry = Lookup(fileid);
  return entry != nullptr ? PopCount(entry->valid) : 0;
}

uint32_t ClientFileCache::CachedVersion(uint32_t fileid) const {
  const Entry* entry = Lookup(fileid);
  return entry != nullptr ? entry->version : 0;
}

uint32_t ClientFileCache::CachedSize(uint32_t fileid) const {
  const Entry* entry = Lookup(fileid);
  return entry != nullptr ? entry->size : 0;
}

uint64_t ClientFileCache::frames_held() const {
  uint64_t held = 0;
  for (const Entry& entry : entries_) {
    for (cksim::PhysAddr frame : entry.frames) {
      if (frame != 0) {
        ++held;
      }
    }
  }
  return held;
}

}  // namespace ckfs

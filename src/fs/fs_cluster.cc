#include "src/fs/fs_cluster.h"

#include <cstdio>

namespace ckfs {

using ck::CkApi;
using cksim::kPageSize;

std::vector<uint8_t> FileBytes(uint32_t fileid, uint32_t version, uint32_t len) {
  std::vector<uint8_t> bytes(len);
  for (uint32_t i = 0; i < len; ++i) {
    bytes[i] = FileByte(fileid, version, i);
  }
  return bytes;
}

std::string FileName(uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "tree/file%u", index);
  return name;
}

ck::NativeOutcome FileScanWorkload::Step(ck::NativeCtx& ctx) {
  ck::NativeOutcome outcome;
  outcome.action = ck::NativeOutcome::Action::kYield;
  if (done_ || failed_) {
    ctx.Charge(500);  // idle spin between orchestration phases
    return outcome;
  }
  CkApi& api = ctx.api();
  // Drain as much as the cache can serve in this quantum: a real thread
  // keeps running until it blocks, so back-to-back cache hits cost only
  // their own simulated work, not a reschedule each. kPending (page on the
  // wire) yields the CPU.
  for (uint32_t ops = 0; ops < 64; ++ops) {
    if (done_ || failed_) {
      return outcome;
    }
    ctx.Charge(200);
    if (phase_ == Phase::kOpen) {
      ClientFileCache::Status status = cache_.Open(api, FileName(file_index_), &fileid_);
      if (status == ClientFileCache::Status::kHit) {
        phase_ = Phase::kRead;
        page_ = 0;
      } else if (status == ClientFileCache::Status::kError) {
        failed_ = true;
      } else {
        return outcome;
      }
      continue;
    }
    uint32_t len = 0;
    ClientFileCache::Status status = cache_.Read(api, fileid_, page_, buffer_, &len);
    if (status == ClientFileCache::Status::kError) {
      failed_ = true;
      return outcome;
    }
    if (status == ClientFileCache::Status::kPending) {
      return outcome;
    }
    if (len > 0) {
      // Verify against the generator under the version the cache holds:
      // every valid page carries its entry's current version by
      // construction.
      uint32_t version = cache_.CachedVersion(fileid_);
      uint32_t base = page_ * kPageSize;
      for (uint32_t i = 0; i < len; ++i) {
        if (buffer_[i] != FileByte(fileid_, version, base + i)) {
          failed_ = true;
          return outcome;
        }
        checksum_ = (checksum_ ^ buffer_[i]) * 0x100000001b3ull;
      }
      bytes_read_ += len;
      ++pages_read_;
      ++page_;
      continue;
    }
    // EOF: next file, next round.
    phase_ = Phase::kOpen;
    if (++file_index_ >= files_) {
      file_index_ = 0;
      if (++round_ >= rounds_) {
        done_ = true;
      }
    }
  }
  return outcome;
}

FsCluster::FsCluster(const FsClusterConfig& config) : config_(config) {
  server_node_ = std::make_unique<Node>();
  server_ = std::make_unique<FileServerKernel>(server_node_->ck);
  cluster_.AddMachine(&server_node_->machine);

  // Populate the tree. The tail page is a half page so partial-page reads
  // are always exercised.
  uint32_t file_len = config_.file_pages * kPageSize - kPageSize / 2;
  for (uint32_t i = 0; i < config_.files; ++i) {
    server_->AddFile(FileName(i), FileBytes(i + 1, 1, file_len));
  }

  cksrm::LaunchParams server_params;
  server_params.page_groups = 2;
  server_params.max_priority = 30;  // the link endpoint threads run at 26
  server_node_->srm.Launch(*server_, server_params);
  CkApi server_api = ServerApi();
  server_->Setup(server_api);

  for (uint32_t i = 0; i < config_.clients; ++i) {
    clients_.push_back(std::make_unique<ClientNode>());
    ClientNode& client = *clients_.back();
    cluster_.AddMachine(&client.machine);
    if (config_.tier_dram_frames != 0) {
      // Before Launch, so every frame the client kernel ever touches is
      // tier-tracked from its first allocation.
      client.ck.set_tiers(config_.tier_dram_frames, config_.tier_demote);
    }

    uint32_t server_group = server_node_->srm.ReserveGroups(1).value();
    uint32_t client_group = client.srm.ReserveGroups(1).value();
    server_fcs_.push_back(std::make_unique<cksim::FiberChannelDevice>(
        server_node_->machine.memory(), &server_node_->ck,
        server_group * cksim::kPageGroupBytes, 8, 8, config_.wire_latency));
    client.fc = std::make_unique<cksim::FiberChannelDevice>(
        client.machine.memory(), &client.ck, client_group * cksim::kPageGroupBytes, 8, 8,
        config_.wire_latency);
    cluster_.Link(*server_fcs_.back(), *client.fc);
    server_node_->machine.AttachDevice(server_fcs_.back().get());
    client.machine.AttachDevice(client.fc.get());

    server_node_->srm.GrantSharedGroups(*server_, server_group, 1,
                                        ck::GroupAccess::kReadWrite);
    server_->AttachClient(server_api, server_fcs_.back().get());

    cksrm::LaunchParams client_params;
    client_params.page_groups = config_.client_page_groups;
    client_params.max_priority = 30;  // the cache pump thread runs at 26
    client.srm.Launch(client.app, client_params);
    client.srm.GrantSharedGroups(client.app, client_group, 1, ck::GroupAccess::kReadWrite);

    CkApi client_api(client.ck, client.app.self(), client.machine.cpu(0));
    client.space = client.app.CreateSpace(client_api, /*locked=*/true);
    client.cache = std::make_unique<ClientFileCache>(client.app, client.ck, config_.cache);
    client.cache->Bind(client_api, client.space, client.fc.get());
    client.workload =
        std::make_unique<FileScanWorkload>(*client.cache, config_.files, config_.scan_rounds);
    client.app.CreateNativeThread(client_api, client.space, client.workload.get(),
                                  /*priority=*/16);
  }
  cluster_.set_parallel(config_.parallel);
}

FsCluster::~FsCluster() = default;

ck::CkApi FsCluster::ServerApi() {
  return ck::CkApi(server_node_->ck, server_->self(), server_node_->machine.cpu(0));
}

ck::CkApi FsCluster::ClientApi(uint32_t client) {
  ClientNode& node = *clients_[client];
  return ck::CkApi(node.ck, node.app.self(), node.machine.cpu(0));
}

bool FsCluster::AllDone() const {
  for (const auto& client : clients_) {
    if (!client->workload->done() && !client->workload->failed()) {
      return false;
    }
  }
  return true;
}

bool FsCluster::Run(cksim::Cycles max_cycles) {
  return RunUntil([this] { return AllDone(); }, max_cycles);
}

bool FsCluster::RunUntil(const std::function<bool()>& done, cksim::Cycles max_cycles) {
  return cluster_.RunUntilDone(done, max_cycles);
}

uint64_t FsCluster::WireTraffic(uint32_t client) const {
  const cksim::FiberChannelDevice& fc = *clients_[client]->fc;
  return fc.packets_sent() + fc.packets_received() + fc.bulk_received();
}

std::vector<cksim::Cycles> FsCluster::FinalClocks() const {
  std::vector<cksim::Cycles> clocks;
  clocks.push_back(server_node_->machine.Now());
  for (const auto& client : clients_) {
    clocks.push_back(client->machine.Now());
  }
  return clocks;
}

}  // namespace ckfs

// A multi-MPM file-service world: one server machine, N client machines,
// star-linked by fiber channel over the conservative cluster driver.
//
// This is the netboot-workstation configuration of the paper's Figure 4 --
// diskless nodes booting and paging from a file-server node over the
// interconnect -- packaged for reuse by tests/fs_test.cc,
// bench/file_service.cc and examples/netboot_workstation.cc. Machine 0 runs
// a FileServerKernel; machines 1..N each run an application kernel
// embedding a ClientFileCache plus a FileScanWorkload that opens every file
// by name and reads it page by page through the cache, verifying contents
// against the deterministic generator and folding them into a checksum.
//
// The whole world runs under cksim::Cluster, so the serial reference driver
// and the host-parallel driver must produce bit-identical results -- final
// clocks, cache stats, checksums (the fs differential of tests/fs_test.cc).

#ifndef SRC_FS_FS_CLUSTER_H_
#define SRC_FS_FS_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/client_cache.h"
#include "src/fs/file_server.h"
#include "src/sim/cluster.h"
#include "src/srm/srm.h"

namespace ckfs {

// Deterministic file contents: byte `index` of (fileid, version). Tests and
// workloads regenerate expected pages from the same function.
inline uint8_t FileByte(uint32_t fileid, uint32_t version, uint32_t index) {
  return static_cast<uint8_t>(fileid * 31 + (index / cksim::kPageSize) * 7 + version * 13 +
                              index);
}

std::vector<uint8_t> FileBytes(uint32_t fileid, uint32_t version, uint32_t len);

// The flat namespace the cluster populates: "tree/file<k>".
std::string FileName(uint32_t index);

// Scans the namespace through the cache: open file 0..files-1, read each
// sequentially to EOF, repeat for `rounds`. Contents are verified against
// FileByte under the version the cache holds at read time.
class FileScanWorkload : public ck::NativeProgram {
 public:
  FileScanWorkload(ClientFileCache& cache, uint32_t files, uint32_t rounds)
      : cache_(cache), files_(files), rounds_(rounds) {}

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override;

  // Pause after the current round completes (warm-phase orchestration):
  // Resume() arms another `rounds` of scanning.
  void Resume(uint32_t rounds) {
    rounds_ = rounds;
    round_ = 0;
    done_ = false;
  }

  bool done() const { return done_; }
  bool failed() const { return failed_; }
  uint64_t checksum() const { return checksum_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t pages_read() const { return pages_read_; }

 private:
  enum class Phase { kOpen, kRead };

  ClientFileCache& cache_;
  uint32_t files_;
  uint32_t rounds_;
  Phase phase_ = Phase::kOpen;
  uint32_t file_index_ = 0;
  uint32_t fileid_ = 0;
  uint32_t page_ = 0;
  uint32_t round_ = 0;
  bool done_ = false;
  bool failed_ = false;
  uint64_t checksum_ = 0xcbf29ce484222325ull;
  uint64_t bytes_read_ = 0;
  uint64_t pages_read_ = 0;
  uint8_t buffer_[cksim::kPageSize] = {};
};

struct FsClusterConfig {
  uint32_t clients = 2;
  uint32_t files = 4;
  uint32_t file_pages = 8;  // pages per file (tail page is partial)
  uint32_t scan_rounds = 1;
  cksim::Cycles wire_latency = 2500;
  ClientFileCache::Config cache;
  bool parallel = false;            // host-parallel cluster driver
  uint32_t client_page_groups = 4;  // frame-pool grant per client kernel
  // Tiered physical memory on every client kernel (docs/TIERING.md):
  // DRAM budget in frames (0 = tiering off) and pressure mode. The SRM's
  // frame-pool hook tier-tags file-cache pages, so the client cache's pages
  // demote to the slow tier under DRAM pressure instead of pinning it.
  uint32_t tier_dram_frames = 0;
  bool tier_demote = true;
};

class FsCluster {
 public:
  explicit FsCluster(const FsClusterConfig& config);
  ~FsCluster();

  // Run until every client's workload is done (checked at barriers).
  bool Run(cksim::Cycles max_cycles = 100000000);
  bool RunUntil(const std::function<bool()>& done, cksim::Cycles max_cycles);
  bool AllDone() const;

  uint32_t clients() const { return static_cast<uint32_t>(clients_.size()); }
  FileServerKernel& server() { return *server_; }
  ClientFileCache& cache(uint32_t client) { return *clients_[client]->cache; }
  FileScanWorkload& workload(uint32_t client) { return *clients_[client]->workload; }
  cksim::FiberChannelDevice& client_device(uint32_t client) { return *clients_[client]->fc; }
  cksim::FiberChannelDevice& server_device(uint32_t client) { return *server_fcs_[client]; }
  cksim::Machine& server_machine() { return server_node_->machine; }
  ck::CacheKernel& server_ck() { return server_node_->ck; }
  cksim::Machine& client_machine(uint32_t client) { return clients_[client]->machine; }
  ck::CacheKernel& client_ck(uint32_t client) { return clients_[client]->ck; }
  cksim::Cluster& cluster() { return cluster_; }
  const FsClusterConfig& config() const { return config_; }

  // APIs bound to the server/client kernel on its machine's CPU 0. Only
  // valid at barriers (inside done predicates) or before/after running.
  ck::CkApi ServerApi();
  ck::CkApi ClientApi(uint32_t client);

  // Packets + bulk payloads that crossed a client's link, both directions
  // (the "zero wire traffic on warm hits" measurement).
  uint64_t WireTraffic(uint32_t client) const;

  std::vector<cksim::Cycles> FinalClocks() const;

 private:
  struct Node {
    Node()
        : machine(cksim::MachineConfig()), ck(machine, ck::CacheKernelConfig()), srm(ck) {
      srm.Boot();
    }
    cksim::Machine machine;
    ck::CacheKernel ck;
    cksrm::Srm srm;
  };

  struct ClientNode : Node {
    ckapp::AppKernelBase app{"fs-client", 64};
    std::unique_ptr<cksim::FiberChannelDevice> fc;
    std::unique_ptr<ClientFileCache> cache;
    std::unique_ptr<FileScanWorkload> workload;
    uint32_t space = 0;
  };

  FsClusterConfig config_;
  std::unique_ptr<Node> server_node_;
  std::unique_ptr<FileServerKernel> server_;
  std::vector<std::unique_ptr<cksim::FiberChannelDevice>> server_fcs_;
  std::vector<std::unique_ptr<ClientNode>> clients_;
  cksim::Cluster cluster_;
};

}  // namespace ckfs

#endif  // SRC_FS_FS_CLUSTER_H_

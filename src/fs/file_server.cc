#include "src/fs/file_server.h"

#include <cstring>

namespace ckfs {

using ck::CkApi;
using cksim::kPageSize;

namespace {

// Per-link virtual layout inside the server's space: each client link gets a
// 2 MiB window, outbound channel slots in the lower half, reception ring in
// the upper half.
constexpr cksim::VirtAddr kLinkVBase = 0x20000000;
constexpr cksim::VirtAddr kLinkVStride = 0x00200000;
constexpr cksim::VirtAddr kLinkInOffset = 0x00100000;

// Simulated CPU cost of staging one page from the store onto the wire.
constexpr cksim::Cycles kPageCopyCost = 200;

}  // namespace

FileServerKernel::FileServerKernel(ck::CacheKernel& ck)
    : ckapp::AppKernelBase("fs-server", /*backing_pages=*/64), ck_(ck) {}

FileServerKernel::~FileServerKernel() = default;

uint32_t FileServerKernel::AddFile(const std::string& name, std::vector<uint8_t> bytes) {
  for (uint32_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) {
      files_[i].bytes = std::move(bytes);
      files_[i].version++;
      return i + 1;
    }
  }
  files_.push_back(FileRec{name, 1, std::move(bytes)});
  return static_cast<uint32_t>(files_.size());
}

FileServerKernel::FileRec* FileServerKernel::Find(uint32_t fileid) {
  if (fileid == 0 || fileid > files_.size()) {
    return nullptr;
  }
  return &files_[fileid - 1];
}

const FileServerKernel::FileRec* FileServerKernel::Find(uint32_t fileid) const {
  if (fileid == 0 || fileid > files_.size()) {
    return nullptr;
  }
  return &files_[fileid - 1];
}

uint32_t FileServerKernel::file_version(uint32_t fileid) const {
  const FileRec* file = Find(fileid);
  return file != nullptr ? file->version : 0;
}

uint32_t FileServerKernel::file_size(uint32_t fileid) const {
  const FileRec* file = Find(fileid);
  return file != nullptr ? static_cast<uint32_t>(file->bytes.size()) : 0;
}

const std::string& FileServerKernel::file_name(uint32_t fileid) const {
  static const std::string kEmpty;
  const FileRec* file = Find(fileid);
  return file != nullptr ? file->name : kEmpty;
}

void FileServerKernel::Setup(CkApi& api) {
  space_index_ = CreateSpace(api, /*locked=*/true);
  setup_done_ = true;
}

uint32_t FileServerKernel::AttachClient(CkApi& api, cksim::FiberChannelDevice* device) {
  uint32_t link_index = static_cast<uint32_t>(links_.size());
  links_.push_back(std::make_unique<ClientLink>());
  ClientLink& link = *links_.back();
  link.device = device;
  link.endpoint = std::make_unique<ckapp::RpcEndpoint>(
      link.out, link.in,
      [this, link_index](uint32_t op, const std::vector<uint8_t>& request, CkApi& serve_api) {
        return Serve(link_index, op, request, serve_api);
      });
  link.endpoint_thread = CreateNativeThread(api, space_index_, link.endpoint.get(),
                                            /*priority=*/26, /*locked=*/true);

  cksim::VirtAddr out_vbase = kLinkVBase + link_index * kLinkVStride;
  cksim::VirtAddr in_vbase = out_vbase + kLinkInOffset;
  link.out.ConfigureSender(*this, space_index_, out_vbase, device->tx_slot(0),
                           device->tx_slot_count());
  link.in.ConfigureReceiver(*this, space_index_, in_vbase, device->rx_slot(0),
                            device->rx_slot_count(), link.endpoint_thread);
  link.in.PrimeReceiver(api);
  return link_index;
}

std::vector<uint8_t> FileServerKernel::Serve(uint32_t link_index, uint32_t op,
                                             const std::vector<uint8_t>& request, CkApi& api) {
  switch (op) {
    case kOpOpen:
      return ServeOpen(request);
    case kOpStat:
      return ServeStat(request);
    case kOpRead:
      return ServeRead(link_index, request, api);
    case kOpWrite:
      return ServeWrite(link_index, request, api);
    case kOpReaddir:
      return ServeReaddir(request);
    case kOpRegister: {
      links_[link_index]->registered = true;
      std::vector<uint8_t> reply;
      AppendPod(reply, FileIdMsg{link_index + 1});
      return reply;
    }
    default:
      ++stats_.bad_requests;
      return {};
  }
}

std::vector<uint8_t> FileServerKernel::ServeOpen(const std::vector<uint8_t>& request) {
  ++stats_.opens;
  std::string name(request.begin(), request.end());
  AttrReply attr;
  attr.status = 1;  // not found
  for (uint32_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) {
      attr = AttrReply{i + 1, files_[i].version, static_cast<uint32_t>(files_[i].bytes.size()),
                       0};
      break;
    }
  }
  std::vector<uint8_t> reply;
  AppendPod(reply, attr);
  return reply;
}

std::vector<uint8_t> FileServerKernel::ServeStat(const std::vector<uint8_t>& request) {
  ++stats_.stats;
  FileIdMsg id;
  AttrReply attr;
  attr.status = 1;
  if (ReadPod(request, 0, &id)) {
    const FileRec* file = Find(id.fileid);
    if (file != nullptr) {
      attr = AttrReply{id.fileid, file->version, static_cast<uint32_t>(file->bytes.size()), 0};
    }
  } else {
    ++stats_.bad_requests;
  }
  std::vector<uint8_t> reply;
  AppendPod(reply, attr);
  return reply;
}

std::vector<uint8_t> FileServerKernel::ServeRead(uint32_t link_index,
                                                 const std::vector<uint8_t>& request,
                                                 CkApi& api) {
  ++stats_.reads;
  ReadRequest read;
  ReadReply ack;  // granted = 0 on any failure
  if (ReadPod(request, 0, &read)) {
    FileRec* file = Find(read.fileid);
    if (file != nullptr) {
      uint32_t size = static_cast<uint32_t>(file->bytes.size());
      uint32_t total_pages = (size + kPageSize - 1) / kPageSize;
      uint32_t first = read.first_page;
      uint32_t last = first + read.pages;  // exclusive
      if (last > total_pages) {
        last = total_pages;
      }
      ack.fileid = read.fileid;
      ack.version = file->version;
      ack.size = size;
      ack.first_page = first;
      ack.granted = last > first ? last - first : 0;
      // Ship each granted page as one bulk payload. The link FIFO keeps them
      // in order; the client validates each against its cached version.
      for (uint32_t page = first; page < first + ack.granted; ++page) {
        uint32_t offset = page * kPageSize;
        uint32_t len = size - offset < kPageSize ? size - offset : kPageSize;
        std::vector<uint8_t> payload;
        payload.reserve(sizeof(BulkPageHeader) + len);
        AppendPod(payload, BulkPageHeader{kBulkMagic, read.fileid, file->version, page, len});
        payload.insert(payload.end(), file->bytes.begin() + offset,
                       file->bytes.begin() + offset + len);
        links_[link_index]->device->SendBulk(std::move(payload), api.now());
        ++stats_.pages_shipped;
        api.Charge(kPageCopyCost);
      }
    }
  } else {
    ++stats_.bad_requests;
  }
  std::vector<uint8_t> reply;
  AppendPod(reply, ack);
  return reply;
}

bool FileServerKernel::WriteLocal(uint32_t fileid, uint32_t offset, const void* data,
                                  uint32_t len, CkApi* api) {
  FileRec* file = Find(fileid);
  if (file == nullptr) {
    return false;
  }
  if (offset + len > file->bytes.size()) {
    file->bytes.resize(offset + len, 0);
  }
  if (len > 0) {
    std::memcpy(file->bytes.data() + offset, data, len);
  }
  file->version++;
  ++stats_.writes;
  if (api != nullptr) {
    PushInvalidations(*api, fileid, /*exclude_link=*/~0u);
  }
  return true;
}

std::vector<uint8_t> FileServerKernel::ServeWrite(uint32_t link_index,
                                                  const std::vector<uint8_t>& request,
                                                  CkApi& api) {
  WriteRequest write;
  WriteReply ack;
  ack.status = 1;
  if (ReadPod(request, 0, &write) && request.size() >= sizeof(WriteRequest) + write.len) {
    FileRec* file = Find(write.fileid);
    if (file != nullptr) {
      if (write.offset + write.len > file->bytes.size()) {
        file->bytes.resize(write.offset + write.len, 0);
      }
      if (write.len > 0) {
        std::memcpy(file->bytes.data() + write.offset, request.data() + sizeof(WriteRequest),
                    write.len);
      }
      file->version++;
      ++stats_.writes;
      ack = WriteReply{write.fileid, file->version, 0};
      // Best-effort notification; the writer learns the version from `ack`.
      PushInvalidations(api, write.fileid, link_index);
    }
  } else {
    ++stats_.bad_requests;
  }
  std::vector<uint8_t> reply;
  AppendPod(reply, ack);
  return reply;
}

std::vector<uint8_t> FileServerKernel::ServeReaddir(const std::vector<uint8_t>& request) {
  ++stats_.readdirs;
  ReaddirRequest dir;
  if (!ReadPod(request, 0, &dir)) {
    ++stats_.bad_requests;
    dir = ReaddirRequest{0, 0};
  }
  // The reply must fit one message slot beneath the RPC header.
  constexpr size_t kReplyBudget =
      ckapp::MessageChannel::kMaxMessage - sizeof(ckapp::RpcHeader);
  std::vector<uint8_t> reply;
  ReaddirReplyHeader header;
  header.total = static_cast<uint32_t>(files_.size());
  AppendPod(reply, header);
  for (uint32_t i = dir.start; i < files_.size() && header.count < dir.max_entries; ++i) {
    const FileRec& file = files_[i];
    size_t need = sizeof(DirEntry) + file.name.size();
    if (reply.size() + need > kReplyBudget) {
      break;
    }
    AppendPod(reply, DirEntry{i + 1, file.version, static_cast<uint32_t>(file.bytes.size()),
                              static_cast<uint32_t>(file.name.size())});
    reply.insert(reply.end(), file.name.begin(), file.name.end());
    ++header.count;
  }
  std::memcpy(reply.data(), &header, sizeof(header));
  return reply;
}

void FileServerKernel::PushInvalidations(CkApi& api, uint32_t fileid, uint32_t exclude_link) {
  const FileRec* file = Find(fileid);
  if (file == nullptr) {
    return;
  }
  std::vector<uint8_t> wire;
  AppendPod(wire, InvalidateMsg{fileid, file->version});
  for (uint32_t i = 0; i < links_.size(); ++i) {
    if (i == exclude_link || !links_[i]->registered) {
      continue;
    }
    links_[i]->endpoint->Call(api, kOpInvalidate, wire,
                              [](const std::vector<uint8_t>&, CkApi&) {});
    ++stats_.invalidations_sent;
  }
}

}  // namespace ckfs

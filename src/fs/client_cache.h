// Client-side file page cache with pipelined read-ahead and version
// invalidation (docs/FILESERVICE.md).
//
// A library any application kernel can embed (the "C++ class library"
// specialization pattern of section 3): a 9front-style mount cache -- a
// hashed LRU of per-file entries, each carrying a valid-page bitmap over
// frames drawn from the owning kernel's FramePool -- in front of the
// file-server kernel on the other end of a fiber-channel link.
//
//   * A hit costs zero wire traffic: the page is copied straight out of a
//     local frame.
//   * A miss issues the demand read RPC and, when the access pattern looks
//     sequential, a pipelined read-ahead window of additional single-page
//     read RPCs (multiple outstanding on the wire, like devmnt's
//     mntrahread), capped below the reception ring's capacity.
//   * Every cached page is tagged with the file version it was read under
//     (qid.vers analogue). Server invalidation pushes and version
//     mismatches observed on open/stat/read replies drop the stale bitmap;
//     a bulk arrival whose version does not match the entry's current
//     version is discarded, so read-ahead can never install stale data.
//
// The public API is poll-style for native app-kernel programs: kPending
// means "retry after yielding" (the DSM worker idiom); the reply and bulk
// arrivals are driven by the cache's pump thread.
//
// All cache work is attributed to the owning kernel's CostAccount through
// CacheKernel::ChargeFs and surfaces as the ck.fs.* / ck.tenant.<slot>.fs_*
// metrics.

#ifndef SRC_FS_CLIENT_CACHE_H_
#define SRC_FS_CLIENT_CACHE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/appkernel/channel.h"
#include "src/fs/fs_protocol.h"
#include "src/sim/devices.h"

namespace ckfs {

struct FsClientStats {
  uint64_t hits = 0;
  uint64_t misses = 0;              // demand reads issued
  uint64_t readahead_issued = 0;    // prefetch reads issued
  uint64_t readahead_useful = 0;    // prefetched pages later hit
  uint64_t invalidations = 0;       // version-driven bitmap drops
  uint64_t evictions = 0;           // entries recycled (LRU / frame pressure)
  uint64_t stale_bulk_dropped = 0;  // bulk pages discarded by version check
  uint64_t demand_stalls = 0;       // polls that found the demand page absent
  uint64_t opens = 0;               // open RPCs issued
};

class ClientFileCache {
 public:
  struct Config {
    uint32_t entries = 16;          // cache entry slots (files cached at once)
    uint32_t max_file_pages = 64;   // bitmap width; files larger are truncated
    bool readahead = true;
    uint32_t readahead_window = 4;  // pages prefetched past a sequential read
    uint32_t min_seq_run = 2;       // consecutive pages before prefetch arms
    uint32_t max_outstanding = 4;   // in-flight read RPCs (< rx ring slots)
  };

  enum class Status { kHit, kPending, kError };

  ClientFileCache(ckapp::AppKernelBase& owner, ck::CacheKernel& ck, const Config& config);
  ~ClientFileCache();

  // Wire the cache to its server link: creates the pump/endpoint thread in
  // `space_index`, configures the channels over the device's slots, and
  // registers with the server for invalidation pushes.
  void Bind(ck::CkApi& api, uint32_t space_index, cksim::FiberChannelDevice* device);

  // Open by name. kHit with *fileid set when the attrs are known (cached
  // opens cost no wire traffic); kPending while the open RPC is in flight.
  Status Open(ck::CkApi& api, const std::string& name, uint32_t* fileid);

  // Re-validate a cached file's version/size against the server (the
  // open/stat validation path). kHit once the fresh attrs have been applied.
  Status Stat(ck::CkApi& api, uint32_t fileid);

  // Read one page. On kHit, copies the page into `out` (kPageSize capacity)
  // and sets *len to the valid byte count (0 at/after EOF). On kPending the
  // demand read (plus any read-ahead window) is on the wire; poll again
  // after yielding.
  Status Read(ck::CkApi& api, uint32_t fileid, uint32_t page, void* out, uint32_t* len);

  // Write-through: sends the write RPC; kHit once the reply arrived (the
  // entry's bitmap is dropped and its version moves to the reply's).
  Status Write(ck::CkApi& api, uint32_t fileid, uint32_t offset, const void* data,
               uint32_t len);

  // One window of the server's namespace (up to 64 entries). Uncached:
  // every completed call re-fetched over the wire.
  struct DirListing {
    std::vector<DirEntry> entries;
    std::vector<std::string> names;  // parallel to entries
  };
  Status Readdir(ck::CkApi& api, DirListing* out);

  // --- introspection (tests, examples) ---
  const FsClientStats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  uint32_t pump_thread() const { return pump_thread_; }
  bool PageCached(uint32_t fileid, uint32_t page) const;
  uint32_t CachedPages(uint32_t fileid) const;  // popcount of the valid bitmap
  uint32_t CachedVersion(uint32_t fileid) const;  // 0 when not cached
  uint32_t CachedSize(uint32_t fileid) const;
  uint64_t frames_held() const;
  uint32_t outstanding_rpcs() const { return outstanding_rpcs_; }

 private:
  static constexpr uint32_t kNone = ~0u;
  static constexpr uint32_t kHashBuckets = 32;

  struct Entry {
    uint32_t fileid = 0;  // 0 = free slot
    uint32_t version = 0;
    uint32_t size = 0;
    uint64_t valid = 0;      // pages present in frames
    uint64_t inflight = 0;   // pages with a read RPC / bulk pending
    uint64_t prefetched = 0; // valid pages installed by read-ahead, not yet hit
    uint64_t ra_request = 0; // in-flight pages that were read-ahead requests
    uint64_t demand_fill = 0;  // valid pages whose demand miss was already counted
    std::vector<cksim::PhysAddr> frames;  // per page; 0 = none
    uint32_t last_page = ~0u;  // sequentiality tracker
    uint32_t seq_run = 0;
    std::string name;
    uint32_t hash_next = kNone;
    uint32_t lru_prev = kNone;
    uint32_t lru_next = kNone;
  };

  // The link's endpoint thread: serves invalidation pushes, completes our
  // calls, and polls the device's bulk queue. Runs kYield while bulk
  // transfers are expected (bulk deliveries raise no signal), kBlock when
  // idle.
  class Pump;

  uint32_t IndexOf(const Entry& entry) const {
    return static_cast<uint32_t>(&entry - entries_.data());
  }
  Entry* Lookup(uint32_t fileid);
  const Entry* Lookup(uint32_t fileid) const;
  Entry* Insert(uint32_t fileid);  // takes a free slot or evicts the LRU tail
  void Touch(Entry& entry);        // move to MRU
  void LruUnlink(Entry& entry);
  void LruPushFront(Entry& entry);
  void HashRemove(Entry& entry);
  void DropEntry(Entry& entry);
  bool EvictOne(uint32_t keep_fileid);
  cksim::PhysAddr FrameFor(Entry& entry, uint32_t page);

  // Drop the entry's bitmap because its version moved to `new_version`.
  void Invalidate(Entry& entry, uint32_t new_version);
  void ApplyAttrs(const AttrReply& attr, const std::string& name);

  void IssueRead(ck::CkApi& api, Entry& entry, uint32_t page, bool readahead);
  void MaybeReadahead(ck::CkApi& api, Entry& entry, uint32_t page);
  void NoteAccess(Entry& entry, uint32_t page);

  // Pump-side machinery.
  void DrainBulk(ck::CkApi& api);
  void InstallBulk(ck::CkApi& api, const std::vector<uint8_t>& blob);
  bool TransfersPending() const { return bulk_expected_ > 0; }
  std::vector<uint8_t> ServePeer(uint32_t op, const std::vector<uint8_t>& request,
                                 ck::CkApi& api);

  uint32_t PagesOf(const Entry& entry) const {
    uint32_t pages = (entry.size + cksim::kPageSize - 1) / cksim::kPageSize;
    return pages < config_.max_file_pages ? pages : config_.max_file_pages;
  }

  ckapp::AppKernelBase& owner_;
  ck::CacheKernel& ck_;
  Config config_;

  cksim::FiberChannelDevice* device_ = nullptr;
  ckapp::MessageChannel out_;
  ckapp::MessageChannel in_;
  std::unique_ptr<Pump> pump_;
  uint32_t pump_thread_ = 0;
  bool registered_ = false;

  std::vector<Entry> entries_;
  uint32_t hash_[kHashBuckets];
  uint32_t lru_head_ = kNone;  // MRU
  uint32_t lru_tail_ = kNone;  // LRU

  std::map<std::string, uint32_t> name_to_fileid_;  // open-by-name cache
  std::map<std::string, bool> open_pending_;
  std::map<uint32_t, bool> stat_pending_;
  std::map<uint32_t, bool> write_pending_;
  bool readdir_pending_ = false;
  bool readdir_ready_ = false;
  DirListing readdir_result_;

  uint32_t outstanding_rpcs_ = 0;  // read RPCs on the wire
  uint64_t bulk_expected_ = 0;     // bulk payloads acked but not yet polled

  FsClientStats stats_;
};

}  // namespace ckfs

#endif  // SRC_FS_CLIENT_CACHE_H_

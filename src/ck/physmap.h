// The physical memory map: 16-byte dependency records (section 4.1).
//
// "The physical-to-virtual mapping is stored in a physical memory map, using
// 16-byte descriptors per page, specifying the physical address, the virtual
// address, the address space and a hash link pointer. ... This data structure
// is viewed as recording dependencies between objects ... the descriptor is
// viewed as specifying a key, the dependent object and the context."
//
// Three record kinds share the one structure and hash table:
//   * PhysToVirt: key = physical frame, dependent = virtual page + flag bits,
//     context = address space slot. The dominant case.
//   * Signal:     key = index of the PhysToVirt record it annotates,
//     dependent = signal thread (slot + generation), context = signal tag.
//   * CopyOnWrite: key = index of the PhysToVirt record, dependent = source
//     physical frame, context = cow tag.
//
// Locating the threads to signal for a physical page is the paper's two-stage
// lookup: chase the PhysToVirt records for the frame, then the Signal records
// keyed by each of those records.
//
// sizeof(MemMapEntry) == 16 is asserted; the free list reuses the hash link,
// so the pool carries no per-record overhead. Replacement over pv records
// lives in the ObjectCache wrapper (src/ck/object_cache.h), not here.

#ifndef SRC_CK_PHYSMAP_H_
#define SRC_CK_PHYSMAP_H_

#include <cstdint>
#include <vector>

#include "src/base/version_lock.h"
#include "src/sim/types.h"

namespace ck {

inline constexpr uint32_t kNilRecord = 0xffffffffu;

// Tail sentinel for the per-thread signal-registration chain, which lives in
// the 28 spare context bits of signal records (so it bounds the map capacity
// a chain can index, far above any configured arena).
inline constexpr uint32_t kNilSignalChain = 0x0fffffffu;

// Record type tags (context bits 31..28).
enum class RecordType : uint8_t { kFree = 0, kPhysToVirt = 1, kSignal = 2, kCopyOnWrite = 3 };

// Flag bits kept in the low 12 bits of `dependent` for PhysToVirt records
// (the virtual address is page aligned, so they are free).
inline constexpr uint32_t kPvLocked = 1u << 0;   // pinned by the app kernel
inline constexpr uint32_t kPvMessage = 1u << 1;  // message-mode page
inline constexpr uint32_t kPvWritable = 1u << 2;

struct MemMapEntry {
  uint32_t key = 0;        // physical frame (pv) or pv-record index (others)
  uint32_t dependent = 0;  // vpage<<12|flags (pv), thread ref (signal), frame (cow)
  uint32_t context = 0;    // type tag | space slot (pv)
  uint32_t hash_link = kNilRecord;  // hash chain / free list

  RecordType type() const { return static_cast<RecordType>(context >> 28); }
  void set_type(RecordType t) {
    context = (context & 0x0fffffffu) | (static_cast<uint32_t>(t) << 28);
  }

  // PhysToVirt accessors.
  uint32_t pv_frame() const { return key; }
  cksim::VirtAddr pv_vaddr() const { return dependent & ~0xfffu; }
  uint32_t pv_flags() const { return dependent & 0xfffu; }
  uint32_t pv_space_slot() const { return context & 0xffffu; }
  bool pv_locked() const { return (dependent & kPvLocked) != 0; }
  bool pv_message() const { return (dependent & kPvMessage) != 0; }

  // Signal accessors: thread reference packs slot (low 8 bits, up to 256
  // thread descriptors) and the low 24 bits of the thread generation for
  // staleness checking.
  uint32_t signal_thread_slot() const { return dependent & 0xffu; }
  uint32_t signal_thread_gen24() const { return dependent >> 8; }

  // Signal records additionally thread a per-thread registration chain
  // through their spare context bits (low 28): the index of the next signal
  // record naming the same thread, kNilSignalChain at the tail. Thread
  // teardown walks this chain instead of scanning the arena.
  uint32_t signal_next() const { return context & 0x0fffffffu; }
  void set_signal_next(uint32_t next) {
    context = (context & 0xf0000000u) | (next & 0x0fffffffu);
  }

  // CopyOnWrite accessor.
  uint32_t cow_source_frame() const { return dependent; }
};

static_assert(sizeof(MemMapEntry) == 16, "Table 1: MemMapEntry must be 16 bytes");

// Fixed-capacity store + hash index for the records.
class PhysicalMemoryMap {
 public:
  explicit PhysicalMemoryMap(uint32_t capacity);

  uint32_t capacity() const { return static_cast<uint32_t>(records_.size()); }
  uint32_t in_use() const { return in_use_; }
  bool full() const { return in_use_ == capacity(); }

  MemMapEntry& record(uint32_t index) { return records_[index]; }
  const MemMapEntry& record(uint32_t index) const { return records_[index]; }

  // Allocate + insert into the hash chain for `key`. Returns kNilRecord when
  // the pool is exhausted (caller reclaims and retries).
  uint32_t Insert(uint32_t key, uint32_t dependent, uint32_t context_low, RecordType type);

  // Remove a record by index (unlinks from its hash chain, frees the slot).
  void Remove(uint32_t index);

  // First record with this key, or kNilRecord. Continue with NextWithKey.
  uint32_t FindFirst(uint32_t key) const;
  uint32_t NextWithKey(uint32_t index) const;

  // Find the PhysToVirt record for (space slot, virtual page) among the
  // records of `frame`. kNilRecord if absent.
  uint32_t FindPv(uint32_t frame, uint32_t space_slot, cksim::VirtAddr vaddr) const;

  // Version counter (non-blocking synchronization, section 4.2). Readers of
  // derived caches (reverse TLB) validate against it.
  ckbase::VersionLock& version() { return version_; }
  uint64_t version_value() const { return version_.ReadBegin(); }

  // Hash-chain length statistics for the data-structure tests.
  uint32_t BucketCount() const { return static_cast<uint32_t>(buckets_.size()); }

 private:
  uint32_t BucketOf(uint32_t key) const;

  std::vector<MemMapEntry> records_;
  std::vector<uint32_t> buckets_;  // head record index per bucket
  uint32_t free_head_ = kNilRecord;
  uint32_t in_use_ = 0;
  ckbase::VersionLock version_;
};

}  // namespace ck

#endif  // SRC_CK_PHYSMAP_H_

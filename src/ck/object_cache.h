// The generic descriptor-cache layer.
//
// The paper's claim is that the Cache Kernel manages kernels, address
// spaces, threads and page mappings "exactly the way a hardware cache caches
// memory lines". This header is that claim as one piece of code: ObjectCache
// wraps a fixed-capacity store (ckbase::FixedPool for the three object
// pools, PhysicalMemoryMap for mappings) and adds the cache half of the
// model -- load/release accounting, the replacement hand, and pluggable
// victim selection -- so the per-type reclamation scans that used to be
// written four times in cache_kernel.cc are one engine parameterized by a
// small per-type Ops struct.
//
// The store is inherited publicly: every existing Lookup/SlotAt/record call
// site keeps working, while Allocate/Release (pools) and Insert/Remove (the
// map) are shadowed so the cache's accounting can never drift from the
// store's occupancy (ValidateInvariants cross-checks slot-by-slot).
//
// Victim selection (Reclaim) is generic over:
//   * Ops -- the per-type glue defined by CacheKernel: occupancy, the
//     effective-lock pin chain of section 4.2, pass eligibility (threads
//     prefer blocked victims), the hardware referenced bit (mappings), and
//     eviction itself (stats + trace + the Figure 6 dependency-ordered
//     writeback cascade).
//   * ReplacementPolicy -- clock (the paper's behavior, default), FIFO
//     (oldest load first), or second-chance (clock extended with the soft
//     referenced bits this layer maintains).
//
// Two scan shapes exist, chosen by Ops::kScanOccupiedSteps:
//   * false (pools): the hand walks slots, one budget unit per slot per
//     pass; the hand only commits when a victim is evicted.
//   * true (mappings): the hand walks occupied records -- the budget counts
//     occupied visits, so a sparsely occupied map can revisit a record and
//     evict it after its second chance is spent; the first unpinned record
//     seen is remembered as a forced fallback. This reproduces the historic
//     ReclaimMapping/ClockNextPv semantics bit-exactly.

#ifndef SRC_CK_OBJECT_CACHE_H_
#define SRC_CK_OBJECT_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/ck/config.h"

namespace ck {

inline constexpr uint32_t kNoVictim = 0xffffffffu;

template <typename Store>
class ObjectCache : public Store {
 public:
  explicit ObjectCache(uint32_t capacity)
      : Store(capacity), load_seq_(capacity, 0), soft_ref_(capacity, 0) {}

  // ---- loaded/free accounting ----
  // Every load stamps the slot with a monotonic sequence number (FIFO age)
  // and an initial soft referenced bit; release clears both. The shadowing
  // wrappers below keep this automatic for every allocation path.
  void OnLoad(uint32_t slot) {
    if (load_seq_[slot] == 0) {
      ++loaded_;
    }
    load_seq_[slot] = ++load_clock_;
    soft_ref_[slot] = 1;
  }
  void OnRelease(uint32_t slot) {
    if (load_seq_[slot] != 0) {
      --loaded_;
    }
    load_seq_[slot] = 0;
    soft_ref_[slot] = 0;
  }
  // Cached objects currently loaded. For the pool instantiations this equals
  // in_use(); for the mapping instance it counts only PhysToVirt records --
  // signal/cow annotations occupy slots but are not cached objects.
  uint32_t loaded() const { return loaded_; }
  // Recency hint for kSecondChance (thread dispatch, signal delivery, ...).
  // Host-side bookkeeping: no simulated cost, ignored by the other policies.
  void Touch(uint32_t slot) { soft_ref_[slot] = 1; }

  uint64_t load_seq(uint32_t slot) const { return load_seq_[slot]; }
  uint32_t hand() const { return hand_; }

  // ---- store shadows (only instantiated for stores that have them) ----
  auto* Allocate() {
    auto* item = Store::Allocate();
    if (item != nullptr) {
      OnLoad(Store::SlotOf(item));
    }
    return item;
  }
  template <typename T>
  void Release(T* item) {
    uint32_t slot = Store::SlotOf(item);
    Store::Release(item);
    OnRelease(slot);
  }
  template <typename RecordTypeT>
  uint32_t Insert(uint32_t key, uint32_t dependent, uint32_t context_low, RecordTypeT type) {
    uint32_t index = Store::Insert(key, dependent, context_low, type);
    if (index != kNoVictim && type == RecordTypeT::kPhysToVirt) {
      OnLoad(index);
    }
    return index;
  }
  void Remove(uint32_t index) {
    Store::Remove(index);
    OnRelease(index);
  }

  // ---- victim selection ----
  // Returns true after ops.Evict() ran on the chosen victim; false when
  // every candidate is pinned (the caller fails the load cleanly with
  // kNoResources). `scan_steps` accumulates candidates examined, for the
  // per-type scan-length counters in CkStats.
  template <typename Ops>
  bool Reclaim(ReplacementPolicy policy, Ops& ops, uint64_t& scan_steps) {
    switch (policy) {
      case ReplacementPolicy::kFifo:
        return ReclaimFifo(ops, scan_steps);
      case ReplacementPolicy::kSecondChance:
        return ReclaimClock(ops, scan_steps, /*soft=*/true);
      case ReplacementPolicy::kClock:
        break;
    }
    return ReclaimClock(ops, scan_steps, /*soft=*/false);
  }

 private:
  // FIFO: evict the oldest-loaded unpinned object. Ignores referenced bits
  // and pass preference -- that indifference is the policy's failure mode the
  // working-set sweep measures. The hand is untouched.
  template <typename Ops>
  bool ReclaimFifo(Ops& ops, uint64_t& scan_steps) {
    uint32_t cap = Store::capacity();
    uint32_t best = kNoVictim;
    uint64_t best_seq = 0;
    for (uint32_t slot = 0; slot < cap; ++slot) {
      if (!ops.Occupied(slot)) {
        continue;
      }
      ++scan_steps;
      if (ops.Pinned(slot)) {
        continue;
      }
      if (best == kNoVictim || load_seq_[slot] < best_seq) {
        best = slot;
        best_seq = load_seq_[slot];
      }
    }
    if (best == kNoVictim) {
      return false;
    }
    ops.Evict(best);
    return true;
  }

  // Clock scan; with `soft` the Cache Kernel's soft referenced bits join the
  // hardware bit (both are consumed -- a referenced victim survives exactly
  // one trip of the hand).
  template <typename Ops>
  bool ReclaimClock(Ops& ops, uint64_t& scan_steps, bool soft) {
    uint32_t cap = Store::capacity();
    uint32_t forced = kNoVictim;
    if constexpr (Ops::kScanOccupiedSteps) {
      // Mapping-shaped scan: budget in occupied visits, mutating hand.
      for (uint32_t step = 0; step < cap; ++step) {
        uint32_t slot = NextOccupied(ops);
        if (slot == kNoVictim) {
          break;
        }
        ++scan_steps;
        if (ops.Pinned(slot)) {
          continue;
        }
        if (forced == kNoVictim) {
          forced = slot;  // fallback if everything stays referenced
        }
        bool hw = ops.TestAndClearReferenced(slot);
        bool sw = soft && TestAndClearSoftRef(slot);
        if (hw || sw) {
          continue;  // second chance
        }
        ops.Evict(slot);
        return true;
      }
    } else {
      // Pool-shaped scan: budget in slots per pass, hand commits on evict.
      for (int pass = 0; pass < Ops::kPasses; ++pass) {
        for (uint32_t step = 0; step < cap; ++step) {
          uint32_t slot = (hand_ + step) % cap;
          ++scan_steps;
          if (!ops.Occupied(slot) || !ops.Eligible(slot, pass)) {
            continue;
          }
          if (ops.Pinned(slot)) {
            continue;
          }
          if (forced == kNoVictim) {
            forced = slot;
          }
          bool hw = ops.TestAndClearReferenced(slot);
          bool sw = soft && TestAndClearSoftRef(slot);
          if (hw || sw) {
            continue;
          }
          hand_ = (slot + 1) % cap;
          ops.Evict(slot);
          return true;
        }
      }
    }
    if (forced != kNoVictim && ops.Occupied(forced)) {
      if constexpr (!Ops::kScanOccupiedSteps) {
        hand_ = (forced + 1) % cap;
      }
      ops.Evict(forced);
      return true;
    }
    return false;
  }

  // Advance the hand to the next occupied slot (wrapping), consuming it.
  // Returns kNoVictim when a full revolution finds nothing occupied.
  template <typename Ops>
  uint32_t NextOccupied(Ops& ops) {
    uint32_t cap = Store::capacity();
    for (uint32_t i = 0; i < cap; ++i) {
      uint32_t slot = hand_;
      hand_ = (hand_ + 1) % cap;
      if (ops.Occupied(slot)) {
        return slot;
      }
    }
    return kNoVictim;
  }

  bool TestAndClearSoftRef(uint32_t slot) {
    bool was = soft_ref_[slot] != 0;
    soft_ref_[slot] = 0;
    return was;
  }

  uint32_t hand_ = 0;               // replacement hand (per-cache, was per-type)
  uint32_t loaded_ = 0;             // slots with a nonzero load stamp
  uint64_t load_clock_ = 0;         // monotonic load counter for FIFO age
  std::vector<uint64_t> load_seq_;  // [slot] -> load stamp, 0 when free
  std::vector<uint8_t> soft_ref_;   // [slot] -> soft referenced bit
};

}  // namespace ck

#endif  // SRC_CK_OBJECT_CACHE_H_

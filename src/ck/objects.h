// Cache Kernel descriptor types: the cached objects of Table 1.
//
// Kernel, AddressSpace and Thread descriptors live in fixed-capacity pools
// sized at boot; MemMapEntry descriptors (the dominant type) live in the
// physical memory map (src/ck/physmap.h). The descriptors hold exactly the
// state the Cache Kernel needs to execute the performance-critical actions;
// everything else ("signal masks and an open file table ... are stored only
// in the application kernel", section 2.3) stays in application-kernel
// backing records.

#ifndef SRC_CK_OBJECTS_H_
#define SRC_CK_OBJECTS_H_

#include <cstdint>

#include "src/base/intrusive_list.h"
#include "src/ck/appkernel_iface.h"
#include "src/ck/ids.h"
#include "src/isa/interpreter.h"
#include "src/sim/types.h"

namespace ck {

inline constexpr uint32_t kMaxCpus = 4;

// Which descriptor cache an object belongs to, for locked-object quotas.
enum class ObjectType : uint8_t { kKernel = 0, kSpace = 1, kThread = 2, kMapping = 3 };
inline constexpr uint32_t kObjectTypeCount = 4;

// --- Thread ---

enum class ThreadState : uint8_t {
  kReady = 0,   // on a ready queue
  kRunning,     // current on some CPU
  kBlocked,     // waiting (signal wait, handler-initiated block)
  kHalted,      // executed HALT / terminated by its kernel, awaiting unload
};

struct ThreadObject {
  ckbase::ListNode pool_node;   // free list / allocated list
  ckbase::ListNode ready_node;  // per-CPU per-priority ready queue
  ckbase::ListNode space_node;  // chain of threads in the owning space

  ThreadState state = ThreadState::kReady;
  uint8_t priority = 0;
  uint8_t cpu = 0;  // processor affinity, assigned at load
  bool locked = false;
  bool in_signal = false;  // executing its signal function; new signals queue

  uint32_t space_slot = 0;  // owning address space (slot + generation)
  uint32_t space_gen = 0;
  uint32_t kernel_slot = 0;  // owning kernel slot (cached from the space)
  uint64_t cookie = 0;       // application kernel's correlation value

  // Execution state. Guest threads use the VM context; native threads carry
  // a program pointer (native register state lives in the program object,
  // which is the application kernel's backing store for it).
  ckisa::VmContext vm;
  NativeProgram* native = nullptr;

  cksim::VirtAddr signal_handler = 0;  // guest signal function entry (0: none)
  uint32_t saved_pc = 0;               // pc saved while in the signal function
  cksim::VirtAddr exception_stack = 0; // stack the app kernel supplied for
                                       // exception processing (section 2.1)

  // Pending address-valued signals (queued "within the Cache Kernel while the
  // thread is running in its signal function", section 2.2).
  static constexpr uint32_t kSignalQueueDepth = 8;
  uint32_t signal_queue[kSignalQueueDepth] = {0};
  uint8_t signal_head = 0;
  uint8_t signal_count = 0;

  // Number of live signal-registration records naming this thread; unloading
  // the thread must remove them (Figure 6 dependency). The records form a
  // singly-linked chain threaded through their spare context bits
  // (MemMapEntry::signal_next), headed in the kernel's per-slot side array
  // (the descriptor itself keeps its Table 1 shape), so teardown is
  // O(registrations), not an arena scan.
  uint16_t signal_reg_count = 0;

  // Scheduling accounting.
  cksim::Cycles slice_remaining = 0;
  cksim::Cycles cpu_consumed = 0;
  uint64_t signals_taken = 0;
  uint64_t signals_dropped = 0;
};

// --- Address space ---

struct AddressSpaceObject {
  ckbase::ListNode pool_node;

  cksim::PhysAddr root_table = 0;  // L1 page table in physical memory
  uint32_t kernel_slot = 0;        // owning kernel
  uint32_t kernel_gen = 0;
  uint64_t cookie = 0;
  uint32_t mapping_count = 0;  // loaded MemMapEntries for this space
  bool locked = false;

  // Intra-MPM batch-dispatch eligibility (src/ck/ck_sched.cc BatchTurn). A
  // space whose every mapped frame is exclusively its own can run its guest
  // quantum concurrently with other such spaces; these counters make that
  // check O(1). shared_frame_refs counts this space's phys-to-virt mappings
  // whose frame carries >= 2 phys-to-virt mappings in total (any space,
  // including duplicate mappings within this one); message_maps counts
  // kPvMessage mappings, which under signal_on_write make stores observable
  // by other CPUs mid-quantum.
  uint32_t shared_frame_refs = 0;
  uint32_t message_maps = 0;

  ckbase::IntrusiveList<ThreadObject, &ThreadObject::space_node> threads;
};

// --- Kernel ---

// Per-page-group access rights (2 bits per group over the nominal 4 GiB
// physical space -- the 2 KiB memory access array of section 4.3).
enum class GroupAccess : uint8_t { kNone = 0, kRead = 1, kReadWrite = 3 };

struct KernelObject {
  ckbase::ListNode pool_node;

  AppKernel* handlers = nullptr;  // trap/fault/writeback entry points
  uint64_t cookie = 0;
  uint32_t manager_slot = 0;  // the kernel that loads/receives this one (SRM)
  bool locked = false;

  // Resource grants (set by the SRM through the modify operations).
  uint8_t memory_access[cksim::kAccessArrayBytes] = {0};  // 2 bits/page group
  uint8_t cpu_percent[kMaxCpus] = {0};  // percent of each processor
  uint8_t max_priority = 0;             // priority cap for its threads
  uint8_t locked_limit[kObjectTypeCount] = {0};
  uint8_t locked_count[kObjectTypeCount] = {0};

  // Consumption accounting (section 4.3): weighted cycles consumed this
  // window per CPU; over_quota degrades the kernel's threads to run only
  // when a processor is otherwise idle.
  uint64_t weighted_consumed[kMaxCpus] = {0};
  bool over_quota[kMaxCpus] = {false};

  uint32_t space_count = 0;   // loaded spaces owned by this kernel
  uint32_t thread_count = 0;  // loaded threads owned by this kernel

  // -- access array helpers --
  GroupAccess GroupAccessOf(uint32_t group) const {
    uint32_t byte = group / 4;
    uint32_t shift = (group % 4) * 2;
    if (byte >= cksim::kAccessArrayBytes) {
      return GroupAccess::kNone;
    }
    return static_cast<GroupAccess>((memory_access[byte] >> shift) & 3u);
  }

  void SetGroupAccess(uint32_t group, GroupAccess access) {
    uint32_t byte = group / 4;
    uint32_t shift = (group % 4) * 2;
    if (byte >= cksim::kAccessArrayBytes) {
      return;
    }
    memory_access[byte] =
        static_cast<uint8_t>((memory_access[byte] & ~(3u << shift)) |
                             (static_cast<uint32_t>(access) << shift));
  }

  bool AllowsPhysical(cksim::PhysAddr addr, bool write) const {
    GroupAccess a = GroupAccessOf(cksim::PageGroupOf(addr));
    if (write) {
      return a == GroupAccess::kReadWrite;
    }
    return a != GroupAccess::kNone;
  }
};

}  // namespace ck

#endif  // SRC_CK_OBJECTS_H_

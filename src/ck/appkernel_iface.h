// The upward interface from the Cache Kernel to application kernels.
//
// In the paper, these are user-mode entry points recorded in the kernel
// object ("a kernel object designates the application kernel address space,
// the trap and exception handlers for the kernel", section 2.4); the Cache
// Kernel redirects a faulting/trapping thread to them (Figure 2), and writes
// object state back over a writeback channel built on the RPC facility. In
// this reproduction application kernels are native C++ (as the originals
// were); the redirect is modeled by a synchronous call on the faulting
// thread's CPU with the same cycle charges the redirect would cost, and the
// writeback channel delivers typed records.

#ifndef SRC_CK_APPKERNEL_IFACE_H_
#define SRC_CK_APPKERNEL_IFACE_H_

#include <cstdint>

#include "src/ck/ids.h"
#include "src/isa/interpreter.h"
#include "src/sim/types.h"

namespace ck {

class CkApi;

// --- writeback records (object state returned to its managing kernel) ---

struct MappingWriteback {
  uint64_t space_cookie = 0;  // the owning kernel's cookie for the space
  cksim::VirtAddr vaddr = 0;  // page-aligned
  uint32_t pframe = 0;
  bool writable = false;
  bool message = false;
  bool referenced = false;  // state bits the app kernel uses to decide
  bool modified = false;    // whether backing store must be updated
  bool had_signal = false;  // a signal registration was flushed with it
};

struct ThreadWriteback {
  uint64_t cookie = 0;
  uint64_t space_cookie = 0;
  ckisa::VmContext context;  // full register state at writeback
  uint8_t priority = 0;
  bool was_blocked = false;  // blocked on a long-term event vs. runnable
  cksim::Cycles cpu_consumed = 0;
};

struct SpaceWriteback {
  uint64_t cookie = 0;
};

struct KernelWriteback {
  uint64_t cookie = 0;
};

// --- downward-forwarded events ---

struct FaultForward {
  ThreadId thread;
  uint64_t thread_cookie = 0;
  uint64_t space_cookie = 0;
  cksim::Fault fault;
  bool copy_on_write = false;  // protection fault on a deferred-copy page
};

struct TrapForward {
  ThreadId thread;
  uint64_t thread_cookie = 0;
  uint16_t number = 0;
  uint32_t args[6] = {0};  // guest a0..a5 at the trap
};

// What a forwarded-event handler decided. kResumed means the handler already
// restarted the thread itself (the optimized load-mapping-and-resume call);
// kBlock leaves the thread blocked until the app kernel resumes or unloads
// it; kTerminate ends the thread (the app kernel then unloads it).
enum class HandlerAction : uint8_t { kResume, kResumed, kBlock, kTerminate };

struct TrapAction {
  HandlerAction action = HandlerAction::kResume;
  bool has_return_value = false;
  uint32_t return_value = 0;  // placed in guest a0 on resume
};

// Implemented by every application kernel. All calls execute on the CPU that
// took the event; `api` carries the calling kernel's authority for nested
// Cache Kernel calls and charges cycles to that CPU.
class AppKernel {
 public:
  virtual ~AppKernel() = default;

  // Page fault / protection fault / consistency fault on one of this
  // kernel's threads (Figure 2 steps 2-5 happen inside this call).
  virtual HandlerAction HandleFault(const FaultForward& fault, CkApi& api) = 0;

  // Trap instruction executed by one of this kernel's threads ("system call"
  // to the application kernel, section 2.3).
  virtual TrapAction HandleTrap(const TrapForward& trap, CkApi& api) = 0;

  // Writeback channel: an object owned by this kernel was displaced (or
  // explicitly unloaded) and its state is returned for safekeeping.
  virtual void OnMappingWriteback(const MappingWriteback& record, CkApi& api) = 0;
  virtual void OnThreadWriteback(const ThreadWriteback& record, CkApi& api) = 0;
  virtual void OnSpaceWriteback(const SpaceWriteback& record, CkApi& api) = 0;

  // Only the kernel-managing kernel (normally the SRM) receives these.
  virtual void OnKernelWriteback(const KernelWriteback& record, CkApi& api) { (void)record; (void)api; }

  // A guest thread of this kernel executed HALT.
  virtual void OnThreadHalt(ThreadId thread, uint64_t cookie, CkApi& api) {
    (void)thread;
    (void)cookie;
    (void)api;
  }
};

// Long-running native "programs" (application-kernel internal threads such as
// schedulers, pagers, RPC servers, and whole native applications like the
// MP3D worker). Step() runs one bounded chunk of work and returns; the
// dispatcher charges the cycles the chunk reports.
struct NativeOutcome {
  enum class Action : uint8_t { kYield, kBlock, kHalt } action = Action::kYield;
};

class NativeCtx;

class NativeProgram {
 public:
  virtual ~NativeProgram() = default;
  virtual NativeOutcome Step(NativeCtx& ctx) = 0;
  // Address-valued signal delivered to this thread (memory-based messaging).
  virtual void OnSignal(cksim::VirtAddr message_addr, NativeCtx& ctx) {
    (void)message_addr;
    (void)ctx;
  }
};

}  // namespace ck

#endif  // SRC_CK_APPKERNEL_IFACE_H_

// Command-line observability session for benches and examples.
//
// ObsSession gives every binary the same two flags:
//
//   --trace=<file>        enable per-CPU event tracing and write a Chrome
//                         trace_event JSON file on Finish() (load it in
//                         chrome://tracing or https://ui.perfetto.dev)
//   --trace-depth=<n>     per-CPU ring capacity in events (default 65536)
//   --metrics             dump the metrics registry (counters + latency
//                         histograms) to stdout on Finish()
//   --fastpath=on|off     force the guest-execution fast path on or off
//                         (default: the kernel's config; results are
//                         identical either way, see docs/PERFORMANCE.md)
//   --policy=<name>       descriptor-cache replacement policy for all four
//                         object types: clock (default), fifo, second-chance
//                         (see src/ck/object_cache.h)
//
// Usage:
//   ck::ObsSession obs(argc, argv);
//   cksim::Machine machine(...);
//   ck::CacheKernel ck(machine, config);
//   obs.Attach(machine, &ck);
//   ... run ...
//   obs.Finish();
//
// When neither flag is given, Attach() and Finish() are no-ops and the
// simulation runs untraced (the CK_TRACE ring pointer stays null).

#ifndef SRC_CK_OBSERVABILITY_H_
#define SRC_CK_OBSERVABILITY_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"

namespace cksim {
class Machine;
}

namespace ck {

class CacheKernel;

class ObsSession {
 public:
  // Consumes --trace/--trace-depth/--metrics from argv (compacting it so the
  // binary's own argument parsing never sees them).
  ObsSession(int& argc, char** argv);

  // Enables tracing on the machine (if --trace was given) and registers the
  // kernel's metrics (if --metrics was given). First attach wins: calls after
  // the first are no-ops, so in multi-world benches the first world built is
  // the observed one.
  void Attach(cksim::Machine& machine, CacheKernel* kernel);

  // True if `machine` is the one this session attached to (and Finish has
  // not run yet). Lets the machine's owner flush the session before dying.
  bool attached(const cksim::Machine& machine) const { return machine_ == &machine; }

  // Writes the trace file and/or dumps metrics, then detaches. One-shot:
  // call it before the traced machine / registered kernel are destroyed;
  // later calls are no-ops. Safe to call when nothing was enabled.
  void Finish();

  bool tracing() const { return !trace_path_.empty(); }
  bool metrics() const { return metrics_; }
  obs::Registry& registry() { return registry_; }

 private:
  std::string trace_path_;
  uint32_t trace_depth_ = 1u << 16;
  bool metrics_ = false;
  int fastpath_override_ = -1;  // -1 = leave config alone, else 0/1
  int policy_override_ = -1;    // -1 = leave config alone, else ReplacementPolicy
  cksim::Machine* machine_ = nullptr;
  obs::Registry registry_;
};

}  // namespace ck

#endif  // SRC_CK_OBSERVABILITY_H_

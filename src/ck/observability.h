// Command-line observability session for benches and examples.
//
// ObsSession gives every binary the same observability flags:
//
//   --trace=<file>        enable per-CPU event tracing and write a Chrome
//                         trace_event JSON file on Finish() (load it in
//                         chrome://tracing or https://ui.perfetto.dev). With
//                         several attached machines the traces merge into one
//                         document, one process per machine, and causal span
//                         ids render cross-machine RPC/migration as flow
//                         arrows between processes.
//   --trace-depth=<n>     per-CPU ring capacity in events (default 65536)
//   --metrics             dump the metrics registry (counters + latency
//                         histograms) to stdout on Finish()
//   --metrics-out=<file>  write the registry in Prometheus-style text
//                         exposition format to <file> on Finish()
//   --profile[=<cycles>]  enable the guest-PC sampling profiler (default
//                         period 50000 cycles = 2 ms at 25 MHz). Histograms
//                         are embedded in the trace file under "ckProfile".
//                         Samples are taken at fast-path cycle-accounting
//                         flush points, so --fastpath=off collects none.
//   --flight-recorder=<dir>  arm the crash flight recorder: on a fatal fault
//                         (or any event reported via DumpFlightRecord) each
//                         attached machine dumps its last trace-ring events,
//                         a metrics snapshot and its CkStats into
//                         <dir>/flight-m<i>-<reason>.ckfr (CRC-framed, see
//                         src/obs/flight_recorder.h)
//   --fastpath=on|off     force the guest-execution fast path on or off
//                         (default: the kernel's config; results are
//                         identical either way, see docs/PERFORMANCE.md)
//   --trace-exec=on|off   force superblock trace execution on or off (only
//                         meaningful with the fast path enabled; identical
//                         results either way, see docs/PERFORMANCE.md)
//   --cpus-parallel[=on|off]  run each machine's simulated CPUs through the
//                         batched intra-MPM dispatch protocol, on host worker
//                         threads (one per simulated CPU). `=off` forces the
//                         classic serial dispatch; bare --cpus-parallel is
//                         `=on`. Bit-identical to serial dispatch with
//                         batching enabled and threads off (the differential
//                         suites enforce this; see docs/PERFORMANCE.md)
//   --policy=<name>       descriptor-cache replacement policy for all four
//                         object types: clock (default), fifo, second-chance
//                         (see src/ck/object_cache.h)
//   --tiers=off|<frames>[,demote|,evict]  tiered physical memory
//                         (docs/TIERING.md): DRAM budget in frames with
//                         demote-to-slow (default) or full-evict pressure
//                         handling; `off` (the default) leaves every frame
//                         untracked at DRAM cost
//
// Unknown `--` flags are rejected with a usage message and exit code 2 (a
// typo like --polcy=fifo must not silently run the default policy). Binaries
// with flags of their own list them in `passthrough`; anything there (prefix
// match) is left in argv untouched, as are non-flag arguments and the
// --gtest_*/--benchmark_* families.
//
// Usage:
//   ck::ObsSession obs(argc, argv, {"--serial"});
//   cksim::Machine machine(...);
//   ck::CacheKernel ck(machine, config);
//   obs.Attach(machine, &ck);
//   ... run ...
//   obs.Finish();
//
// Attach may be called once per machine of a cluster: tracing, the profiler
// and the fatal-fault hook apply to every attached machine, while metrics
// registration keeps the PR-1 first-attach-wins rule (the registry's flat
// names would collide across kernels). When no flag is given, Attach() and
// Finish() are no-ops and the simulation runs unobserved (the CK_TRACE ring
// pointer stays null).

#ifndef SRC_CK_OBSERVABILITY_H_
#define SRC_CK_OBSERVABILITY_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/types.h"

namespace cksim {
class Machine;
}

namespace ck {

class CacheKernel;

class ObsSession {
 public:
  // Consumes the observability flags from argv (compacting it so the
  // binary's own argument parsing never sees them). `passthrough` lists the
  // binary's own flags (exact strings or prefixes like "--steps="); any
  // other `--` argument prints usage to stderr and exits with code 2.
  ObsSession(int& argc, char** argv, std::initializer_list<const char*> passthrough = {});

  // Enables tracing on the machine (if --trace was given), arms the profiler
  // and the fatal-fault flight-recorder hook (if requested), and registers
  // the kernel's metrics (first attach only). Call once per machine; calling
  // again with an already-attached machine is a no-op.
  void Attach(cksim::Machine& machine, CacheKernel* kernel);

  // True if `machine` is one this session attached (and Finish has not run
  // yet). Lets the machine's owner flush the session before dying.
  bool attached(const cksim::Machine& machine) const;

  // Writes the trace file (all attached machines merged, profiler histograms
  // embedded) and/or dumps metrics, then detaches. One-shot: call it before
  // the traced machines / registered kernel are destroyed; later calls are
  // no-ops. Safe to call when nothing was enabled.
  void Finish();

  // Dump a flight record for every attached machine into the
  // --flight-recorder directory (no-op when the flag was not given). Wired
  // automatically to each kernel's fatal-fault hook; call it directly from
  // SRM event hooks (restore preflight failures, failover) or anywhere else
  // a post-mortem snapshot is warranted.
  void DumpFlightRecord(const std::string& reason);

  bool tracing() const { return !trace_path_.empty(); }
  bool metrics() const { return metrics_; }
  bool profiling() const { return profile_period_ != 0; }
  bool flight_recorder_armed() const { return !flight_dir_.empty(); }
  obs::Registry& registry() { return registry_; }

 private:
  struct Attached {
    cksim::Machine* machine = nullptr;
    CacheKernel* kernel = nullptr;
  };

  std::string trace_path_;
  uint32_t trace_depth_ = 1u << 16;
  bool metrics_ = false;
  std::string metrics_out_;
  cksim::Cycles profile_period_ = 0;
  std::string flight_dir_;
  int fastpath_override_ = -1;  // -1 = leave config alone, else 0/1
  int trace_exec_override_ = -1;     // -1 = leave config alone, else 0/1
  int cpus_parallel_override_ = -1;  // -1 = leave config alone, else 0/1
  int policy_override_ = -1;    // -1 = leave config alone, else ReplacementPolicy
  int64_t tiers_frames_ = -1;   // -1 = leave config alone, else DRAM frame budget
  bool tiers_demote_ = true;    // pressure mode when tiers_frames_ >= 0
  std::vector<Attached> attached_;
  obs::Registry registry_;
};

}  // namespace ck

#endif  // SRC_CK_OBSERVABILITY_H_

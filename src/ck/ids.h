// Typed object identifiers across the Cache Kernel interface.
//
// "Each loaded object is identified by an object identifier, returned when
// the object is loaded. ... a new identifier is assigned each time an object
// is loaded" (section 2). Identifiers are slot+generation pairs: reclaiming a
// slot bumps its generation, so every outstanding identifier for the old
// occupant goes stale and the owning application kernel observes kStale and
// re-loads -- the retry protocol the paper describes for concurrent
// writeback.
//
// Page mappings deliberately have no identifiers: "Page mappings are
// identified by address space and virtual address" (section 2.1), saving a
// field in the dominant descriptor type.

#ifndef SRC_CK_IDS_H_
#define SRC_CK_IDS_H_

#include "src/base/fixed_pool.h"

namespace ck {

// Distinct wrapper types so a ThreadId cannot be passed where a SpaceId is
// expected; all share the slot+generation representation.
struct KernelId {
  ckbase::PoolId id;
  bool valid() const { return id.valid(); }
  bool operator==(const KernelId&) const = default;
};

struct SpaceId {
  ckbase::PoolId id;
  bool valid() const { return id.valid(); }
  bool operator==(const SpaceId&) const = default;
};

struct ThreadId {
  ckbase::PoolId id;
  bool valid() const { return id.valid(); }
  bool operator==(const ThreadId&) const = default;
};

}  // namespace ck

#endif  // SRC_CK_IDS_H_

#include "src/ck/observability.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/ck/cache_kernel.h"
#include "src/ckpt/serializer.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/flight_recorder.h"
#include "src/sim/machine.h"
#include "src/sim/types.h"

namespace ck {

namespace {

// Default --profile period: 50000 cycles = 2 ms at the simulated 25 MHz.
constexpr cksim::Cycles kDefaultProfilePeriod = 50000;

// Flag families that are never ours and never an error: test/bench runners
// consume these after us.
constexpr const char* kBuiltinPassthrough[] = {"--gtest_", "--benchmark_"};

void PrintUsage(const char* prog, const std::vector<std::string>& passthrough) {
  std::fprintf(stderr,
               "usage: %s [observability flags]\n"
               "  --trace=<file>           write a Chrome trace_event JSON file\n"
               "  --trace-depth=<n>        per-CPU trace ring capacity (default 65536)\n"
               "  --metrics                dump metrics to stdout at the end\n"
               "  --metrics-out=<file>     write Prometheus-style text exposition\n"
               "  --profile[=<cycles>]     sample guest PCs every <cycles> (default %llu)\n"
               "  --flight-recorder=<dir>  dump post-mortem records into <dir>\n"
               "  --fastpath=on|off        force the guest-execution fast path\n"
               "  --trace-exec=on|off      force superblock trace execution\n"
               "  --cpus-parallel[=on|off] batched intra-MPM dispatch on host threads\n"
               "  --policy=<name>          replacement policy: clock|fifo|second-chance\n"
               "  --tiers=off|<frames>[,demote|,evict]  tiered memory DRAM budget\n",
               prog, static_cast<unsigned long long>(kDefaultProfilePeriod));
  if (!passthrough.empty()) {
    std::fprintf(stderr, "binary-specific flags:\n");
    for (const std::string& flag : passthrough) {
      std::fprintf(stderr, "  %s\n", flag.c_str());
    }
  }
}

// Sanitize a flight-record reason into a filename fragment.
std::string SanitizeReason(const std::string& reason) {
  std::string out;
  for (char c : reason) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    out.push_back(ok ? c : '-');
  }
  if (out.size() > 48) {
    out.resize(48);
  }
  return out;
}

}  // namespace

ObsSession::ObsSession(int& argc, char** argv, std::initializer_list<const char*> passthrough) {
  std::vector<std::string> pass(passthrough.begin(), passthrough.end());
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path_ = arg + 8;
    } else if (std::strncmp(arg, "--trace-depth=", 14) == 0) {
      long depth = std::strtol(arg + 14, nullptr, 10);
      if (depth > 0) {
        trace_depth_ = static_cast<uint32_t>(depth);
      }
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics_ = true;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out_ = arg + 14;
    } else if (std::strcmp(arg, "--profile") == 0) {
      profile_period_ = kDefaultProfilePeriod;
    } else if (std::strncmp(arg, "--profile=", 10) == 0) {
      long long period = std::strtoll(arg + 10, nullptr, 10);
      profile_period_ = period > 0 ? static_cast<cksim::Cycles>(period) : kDefaultProfilePeriod;
    } else if (std::strncmp(arg, "--flight-recorder=", 18) == 0) {
      flight_dir_ = arg + 18;
    } else if (std::strcmp(arg, "--fastpath=on") == 0) {
      fastpath_override_ = 1;
    } else if (std::strcmp(arg, "--fastpath=off") == 0) {
      fastpath_override_ = 0;
    } else if (std::strcmp(arg, "--trace-exec=on") == 0) {
      trace_exec_override_ = 1;
    } else if (std::strcmp(arg, "--trace-exec=off") == 0) {
      trace_exec_override_ = 0;
    } else if (std::strcmp(arg, "--cpus-parallel") == 0 ||
               std::strcmp(arg, "--cpus-parallel=on") == 0) {
      cpus_parallel_override_ = 1;
    } else if (std::strcmp(arg, "--cpus-parallel=off") == 0) {
      cpus_parallel_override_ = 0;
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      const char* name = arg + 9;
      if (std::strcmp(name, "clock") == 0) {
        policy_override_ = static_cast<int>(ReplacementPolicy::kClock);
      } else if (std::strcmp(name, "fifo") == 0) {
        policy_override_ = static_cast<int>(ReplacementPolicy::kFifo);
      } else if (std::strcmp(name, "second-chance") == 0) {
        policy_override_ = static_cast<int>(ReplacementPolicy::kSecondChance);
      } else {
        std::fprintf(stderr, "%s: unknown --policy=%s (clock|fifo|second-chance)\n", argv[0],
                     name);
        PrintUsage(argv[0], pass);
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--tiers=", 8) == 0) {
      const char* value = arg + 8;
      if (std::strcmp(value, "off") == 0) {
        tiers_frames_ = 0;
      } else {
        char* end = nullptr;
        long long frames = std::strtoll(value, &end, 10);
        bool ok = end != value && frames > 0;
        if (ok && *end == ',') {
          if (std::strcmp(end + 1, "demote") == 0) {
            tiers_demote_ = true;
          } else if (std::strcmp(end + 1, "evict") == 0) {
            tiers_demote_ = false;
          } else {
            ok = false;
          }
        } else if (ok && *end != '\0') {
          ok = false;
        }
        if (!ok) {
          std::fprintf(stderr, "%s: bad --tiers=%s (off|<frames>[,demote|,evict])\n", argv[0],
                       value);
          PrintUsage(argv[0], pass);
          std::exit(2);
        }
        tiers_frames_ = frames;
      }
    } else if (std::strcmp(arg, "--help") == 0) {
      PrintUsage(argv[0], pass);
      std::exit(0);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      // A flag, but not one of ours: keep it for the binary if it is listed
      // (or a builtin runner family), otherwise a typo'd observability flag
      // must not silently run with defaults.
      bool keep = false;
      for (const char* prefix : kBuiltinPassthrough) {
        if (std::strncmp(arg, prefix, std::strlen(prefix)) == 0) {
          keep = true;
        }
      }
      for (const std::string& flag : pass) {
        if (std::strncmp(arg, flag.c_str(), flag.size()) == 0) {
          keep = true;
        }
      }
      if (!keep) {
        std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg);
        PrintUsage(argv[0], pass);
        std::exit(2);
      }
      argv[out++] = argv[i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

void ObsSession::Attach(cksim::Machine& machine, CacheKernel* kernel) {
  for (const Attached& a : attached_) {
    if (a.machine == &machine) {
      return;
    }
  }
  bool first = attached_.empty();
  attached_.push_back(Attached{&machine, kernel});
  if (!trace_path_.empty()) {
    machine.EnableTracing(trace_depth_);
  }
  if (kernel == nullptr) {
    return;
  }
  if ((metrics_ || !metrics_out_.empty()) && first) {
    kernel->RegisterMetrics(registry_);
  }
  if (profile_period_ != 0) {
    kernel->set_profile_period(profile_period_);
  }
  if (!flight_dir_.empty()) {
    kernel->set_fatal_hook([this](const std::string& reason) { DumpFlightRecord(reason); });
  }
  if (fastpath_override_ >= 0) {
    kernel->set_fastpath(fastpath_override_ == 1);
  }
  if (trace_exec_override_ >= 0) {
    kernel->set_trace_exec(trace_exec_override_ == 1);
  }
  if (cpus_parallel_override_ >= 0) {
    kernel->set_cpus_parallel(cpus_parallel_override_ == 1);
    kernel->set_cpu_host_threads(cpus_parallel_override_ == 1 ? machine.cpu_count() : 0);
  }
  if (policy_override_ >= 0) {
    for (uint32_t type = 0; type < kObjectTypeCount; ++type) {
      kernel->set_replacement_policy(static_cast<ObjectType>(type),
                                     static_cast<ReplacementPolicy>(policy_override_));
    }
  }
  if (tiers_frames_ >= 0) {
    kernel->set_tiers(static_cast<uint32_t>(tiers_frames_), tiers_demote_);
  }
}

bool ObsSession::attached(const cksim::Machine& machine) const {
  for (const Attached& a : attached_) {
    if (a.machine == &machine) {
      return true;
    }
  }
  return false;
}

void ObsSession::DumpFlightRecord(const std::string& reason) {
  if (flight_dir_.empty() || attached_.empty()) {
    return;
  }
  // Metrics snapshot, shared by every machine's record (the registry is
  // session-global).
  std::string metrics_text;
  {
    char* buf = nullptr;
    size_t len = 0;
    std::FILE* mem = open_memstream(&buf, &len);
    if (mem != nullptr) {
      registry_.WriteText(mem);
      std::fclose(mem);
      metrics_text.assign(buf, len);
      std::free(buf);
    }
  }
  std::string suffix = SanitizeReason(reason);
  for (size_t i = 0; i < attached_.size(); ++i) {
    const Attached& a = attached_[i];
    // CkStats is a flat array of u64 counters; frame it as one so the record
    // survives layout growth (older decoders read a shorter prefix).
    std::vector<uint8_t> stats_blob;
    if (a.kernel != nullptr) {
      const CkStats& stats = a.kernel->stats();
      static_assert(sizeof(CkStats) % sizeof(uint64_t) == 0, "CkStats must be u64 counters");
      const uint64_t* words = reinterpret_cast<const uint64_t*>(&stats);
      uint32_t count = sizeof(CkStats) / sizeof(uint64_t);
      ckckpt::Writer w;
      w.U32(count);
      for (uint32_t k = 0; k < count; ++k) {
        w.U64(words[k]);
      }
      stats_blob = w.Take();
    }
    std::vector<uint8_t> record = obs::EncodeFlightRecord(
        reason, a.machine->Now(), a.machine->tracer(), /*last_n_per_cpu=*/256, metrics_text,
        stats_blob);
    std::string path = flight_dir_ + "/flight-m" + std::to_string(i) + "-" + suffix + ".ckfr";
    if (obs::WriteFlightRecordFile(path, record)) {
      std::fprintf(stderr, "[obs] flight record (%s) -> %s\n", reason.c_str(), path.c_str());
    } else {
      std::fprintf(stderr, "[obs] FAILED to write flight record to %s\n", path.c_str());
    }
  }
}

void ObsSession::Finish() {
  if (!trace_path_.empty()) {
    std::vector<obs::MachineTrace> machines;
    for (size_t i = 0; i < attached_.size(); ++i) {
      if (attached_[i].machine->tracer() != nullptr) {
        obs::MachineTrace mt;
        mt.tracer = attached_[i].machine->tracer();
        mt.pid = static_cast<uint32_t>(i);
        mt.name = "machine " + std::to_string(i);
        machines.push_back(mt);
      }
    }
    // Profiler histograms ride in the trace file as an extra top-level key
    // (Chrome ignores unknown keys).
    std::string extra;
    if (profile_period_ != 0) {
      extra = "\"ckProfile\":{\"period\":" + std::to_string(profile_period_) +
              ",\"machines\":[";
      bool first_machine = true;
      for (size_t i = 0; i < attached_.size(); ++i) {
        const CacheKernel* kernel = attached_[i].kernel;
        if (kernel == nullptr) {
          continue;
        }
        if (!first_machine) {
          extra += ",";
        }
        first_machine = false;
        extra += "{\"machine\":" + std::to_string(i) +
                 ",\"samples\":" + std::to_string(kernel->profile_samples_total()) +
                 ",\"kernels\":{";
        bool first_slot = true;
        const auto& pcs = kernel->profile_pcs();
        for (size_t slot = 0; slot < pcs.size(); ++slot) {
          if (pcs[slot].empty()) {
            continue;
          }
          if (!first_slot) {
            extra += ",";
          }
          first_slot = false;
          extra += "\"" + std::to_string(slot) + "\":{";
          bool first_pc = true;
          for (const auto& [pc, count] : pcs[slot]) {
            if (!first_pc) {
              extra += ",";
            }
            first_pc = false;
            char key[16];
            std::snprintf(key, sizeof(key), "\"%" PRIu32 "\":", pc);
            extra += key;
            extra += std::to_string(count);
          }
          extra += "}";
        }
        extra += "}}";
      }
      extra += "]}";
    }
    if (!machines.empty()) {
      if (obs::WriteChromeTrace(machines, static_cast<double>(cksim::kCyclesPerMicrosecond),
                                trace_path_, extra)) {
        std::fprintf(stderr, "[obs] wrote trace to %s\n", trace_path_.c_str());
      } else {
        std::fprintf(stderr, "[obs] failed to write trace to %s\n", trace_path_.c_str());
      }
    }
  }
  if (metrics_) {
    std::printf("\n-- metrics --\n");
    registry_.DumpText(stdout);
  }
  if (!metrics_out_.empty()) {
    std::FILE* f = std::fopen(metrics_out_.c_str(), "w");
    if (f != nullptr) {
      registry_.WriteText(f);
      std::fclose(f);
      std::fprintf(stderr, "[obs] wrote metrics to %s\n", metrics_out_.c_str());
    } else {
      std::fprintf(stderr, "[obs] failed to write metrics to %s\n", metrics_out_.c_str());
    }
  }
  // Finish is a one-shot: the registry's callbacks and the machine pointers
  // reference objects the caller may destroy right after, so drop them.
  // (Fastpath/policy overrides survive so later worlds in a multi-world bench
  // still honor the flags.)
  attached_.clear();
  trace_path_.clear();
  metrics_ = false;
  metrics_out_.clear();
  flight_dir_.clear();
  profile_period_ = 0;
  registry_ = obs::Registry();
}

}  // namespace ck

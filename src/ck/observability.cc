#include "src/ck/observability.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/ck/cache_kernel.h"
#include "src/obs/chrome_trace.h"
#include "src/sim/machine.h"
#include "src/sim/types.h"

namespace ck {

ObsSession::ObsSession(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path_ = arg + 8;
    } else if (std::strncmp(arg, "--trace-depth=", 14) == 0) {
      long depth = std::strtol(arg + 14, nullptr, 10);
      if (depth > 0) {
        trace_depth_ = static_cast<uint32_t>(depth);
      }
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics_ = true;
    } else if (std::strcmp(arg, "--fastpath=on") == 0) {
      fastpath_override_ = 1;
    } else if (std::strcmp(arg, "--fastpath=off") == 0) {
      fastpath_override_ = 0;
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      const char* name = arg + 9;
      if (std::strcmp(name, "clock") == 0) {
        policy_override_ = static_cast<int>(ReplacementPolicy::kClock);
      } else if (std::strcmp(name, "fifo") == 0) {
        policy_override_ = static_cast<int>(ReplacementPolicy::kFifo);
      } else if (std::strcmp(name, "second-chance") == 0) {
        policy_override_ = static_cast<int>(ReplacementPolicy::kSecondChance);
      } else {
        std::fprintf(stderr, "[obs] unknown --policy=%s (clock|fifo|second-chance)\n", name);
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
}

void ObsSession::Attach(cksim::Machine& machine, CacheKernel* kernel) {
  if (machine_ != nullptr) {
    return;  // first attach wins; later machines run unobserved
  }
  machine_ = &machine;
  if (!trace_path_.empty()) {
    machine.EnableTracing(trace_depth_);
  }
  if (metrics_ && kernel != nullptr) {
    kernel->RegisterMetrics(registry_);
  }
  if (fastpath_override_ >= 0 && kernel != nullptr) {
    kernel->set_fastpath(fastpath_override_ == 1);
  }
  if (policy_override_ >= 0 && kernel != nullptr) {
    for (uint32_t type = 0; type < kObjectTypeCount; ++type) {
      kernel->set_replacement_policy(static_cast<ObjectType>(type),
                                     static_cast<ReplacementPolicy>(policy_override_));
    }
  }
}

void ObsSession::Finish() {
  if (!trace_path_.empty() && machine_ != nullptr && machine_->tracer() != nullptr) {
    if (obs::WriteChromeTrace(*machine_->tracer(),
                              static_cast<double>(cksim::kCyclesPerMicrosecond),
                              trace_path_)) {
      std::fprintf(stderr, "[obs] wrote trace to %s\n", trace_path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] failed to write trace to %s\n", trace_path_.c_str());
    }
  }
  if (metrics_) {
    std::printf("\n-- metrics --\n");
    registry_.DumpText(stdout);
  }
  // Finish is a one-shot: the registry's callbacks and the machine pointer
  // reference objects the caller may destroy right after, so drop them.
  machine_ = nullptr;
  trace_path_.clear();
  metrics_ = false;
  registry_ = obs::Registry();
}

}  // namespace ck

// Cache Kernel scheduling, dispatch, and trap/fault forwarding (Figure 2).

#include "src/ck/cache_kernel.h"

namespace ck {

using cksim::Cycles;
using cksim::PhysAddr;
using cksim::VirtAddr;

// Guest memory bus: binds the running thread's address space to the CPU's
// MMU. All guest instruction fetches, loads and stores flow through here.
class GuestBusImpl : public ckisa::GuestBus {
 public:
  GuestBusImpl(CacheKernel& ck, cksim::Cpu& cpu, AddressSpaceObject* space, uint16_t asid)
      : ck_(ck), cpu_(cpu), space_(space), asid_(asid),
        fast_enabled_(ck.knobs_.fastpath) {
    if (fast_enabled_) {
      fp_.mtlb = &ck.micro_tlbs_[cpu.id()];
      fp_.tlb = &cpu.mmu().tlb();
      fp_.exec_cache = ck.exec_cache_.get();
      fp_.mem = &ck.machine_.memory();
      fp_.remote_frame_bits = ck.remote_frames_.dense_data();
      fp_.frame_count = ck.remote_frames_.dense_limit();
      fp_.cpu = &cpu;
      fp_.asid = asid;
      fp_.cost_tlb_hit = ck.machine_.cost().tlb_hit;
      fp_.cost_mem_word = ck.machine_.cost().mem_word;
      fp_.cost_instruction = ck.machine_.cost().instruction;
      if (ck.knobs_.profile_period != 0) {
        fp_.sampler = &ck.samplers_[cpu.id()];
      }
      if (ck.knobs_.trace_exec) {
        // Superblock traces: the owning CPU's trace cache plus this quantum's
        // staged counters (FastPath contract: both set or both null).
        fp_.tcache = ck.trace_caches_[cpu.id()].get();
        fp_.trace_stats = &trace_stats_;
      }
    }
  }

  ckisa::FastPath* fast_path() override { return fast_enabled_ ? &fp_ : nullptr; }

  // Counters staged per quantum and folded into CkStats / the tenant account
  // at commit, so a batched (possibly worker-thread) quantum never touches
  // shared kernel counters mid-run.
  uint64_t staged_consistency_faults() const { return staged_consistency_faults_; }
  const ckisa::TraceStats& trace_stats() const { return trace_stats_; }

  MemResult Fetch(uint32_t vaddr) override {
    return Access(vaddr, cksim::Access::kExecute, 0, 4);
  }
  MemResult Load32(uint32_t vaddr) override { return Access(vaddr, cksim::Access::kRead, 0, 4); }
  MemResult Load8(uint32_t vaddr) override { return Access(vaddr, cksim::Access::kRead, 0, 1); }
  MemResult Store32(uint32_t vaddr, uint32_t value) override {
    return Access(vaddr, cksim::Access::kWrite, value, 4);
  }
  MemResult Store8(uint32_t vaddr, uint8_t value) override {
    return Access(vaddr, cksim::Access::kWrite, value, 1);
  }

  void ChargeInstruction() override { cpu_.Advance(ck_.machine_.cost().instruction); }

  void OnMessageWrite(uint32_t vaddr) override {
    // Signal-on-write hardware assist (section 2.2 footnote): the write
    // itself generates the address-valued signal.
    if (!ck_.config_.signal_on_write) {
      return;
    }
    cksim::Mmu::TranslateResult t =
        cpu_.mmu().Translate(space_->root_table, asid_, vaddr, cksim::Access::kRead);
    if (t.ok) {
      ck_.DeliverSignalToFrame(cksim::PageFrame(t.paddr), t.paddr & cksim::kPageOffsetMask,
                               cpu_.clock(), &cpu_);
    }
  }

 private:
  MemResult Access(uint32_t vaddr, cksim::Access access, uint32_t value, uint32_t size) {
    MemResult result;
    if (size == 4 && (vaddr & 3u) != 0) {
      result.fault.type = cksim::FaultType::kBadAlignment;
      result.fault.address = vaddr;
      result.fault.access = access;
      return result;
    }
    cksim::Mmu::TranslateResult t =
        cpu_.mmu().Translate(space_->root_table, asid_, vaddr, access);
    cpu_.Advance(t.cycles);
    if (!t.ok) {
      result.fault = t.fault;
      return result;
    }
    uint32_t pframe = cksim::PageFrame(t.paddr);
    if (ck_.FrameIsRemote(pframe)) {
      // Consistency fault: the line is held on a remote node or the memory
      // module failed (section 2.1). Staged, not charged to stats_ directly:
      // this can run on a batch worker thread.
      staged_consistency_faults_++;
      result.fault.type = cksim::FaultType::kConsistency;
      result.fault.address = vaddr;
      result.fault.access = access;
      return result;
    }
    cksim::PhysicalMemory& mem = ck_.machine_.memory();
    cpu_.Advance(ck_.machine_.cost().mem_word);
    if (access == cksim::Access::kWrite) {
      if (size == 4) {
        mem.WriteWord(t.paddr, value);
      } else {
        mem.WriteByte(t.paddr, static_cast<uint8_t>(value));
      }
      result.message_write = t.message_write;
    } else {
      result.value = size == 4 ? mem.ReadWord(t.paddr) : mem.ReadByte(t.paddr);
    }
    result.ok = true;
    // Seed the micro-TLB so the next access to this page takes the fast
    // path. Probe is side-effect free; the TLB entry is resident (the
    // translation above just hit or filled it).
    if (fast_enabled_) {
      fp_.mtlb->Fill(access, asid_, vaddr >> cksim::kPageShift,
                     fp_.tlb->Probe(asid_, vaddr >> cksim::kPageShift));
    }
    return result;
  }

  CacheKernel& ck_;
  cksim::Cpu& cpu_;
  AddressSpaceObject* space_;
  uint16_t asid_;
  bool fast_enabled_;
  uint64_t staged_consistency_faults_ = 0;
  ckisa::TraceStats trace_stats_;
  ckisa::FastPath fp_;
};

// One prepared guest quantum: everything the execution phase needs to run
// ckisa::Run without touching shared kernel state, plus the staged results
// the commit phase folds back in. Lives in a stack array in BatchTurn (or on
// RunGuest's stack in serial mode); published to workers by raw pointer.
struct CacheKernel::GuestRunJob {
  ThreadObject* thread = nullptr;
  cksim::Cpu* cpu = nullptr;
  AddressSpaceObject* space = nullptr;
  ThreadId thread_id{};
  cksim::Cycles before = 0;
  ckisa::RunResult run{};
  uint64_t staged_consistency_faults = 0;
  ckisa::TraceStats trace_stats{};
};

// ---------------------------------------------------------------------------
// Native application memory access
// ---------------------------------------------------------------------------

Result<uint32_t> CacheKernel::GuestLoad(KernelId caller, cksim::Cpu& cpu, ThreadId thread_id,
                                        VirtAddr vaddr) {
  ThreadObject* thread = GetThread(thread_id);
  KernelObject* owner = GetKernel(caller);
  if (thread == nullptr || owner == nullptr || kernels_.SlotAt(thread->kernel_slot) != owner) {
    return CkStatus::kStale;
  }
  for (int attempt = 0; attempt < 3; ++attempt) {
    AddressSpaceObject* space =
        spaces_.Lookup(ckbase::PoolId{thread->space_slot, thread->space_gen});
    if (space == nullptr) {
      return CkStatus::kStale;
    }
    cksim::Mmu::TranslateResult t = cpu.mmu().Translate(
        space->root_table, static_cast<uint16_t>(thread->space_slot), vaddr,
        cksim::Access::kRead);
    cpu.Advance(t.cycles);
    if (t.ok) {
      if (FrameIsRemote(cksim::PageFrame(t.paddr))) {
        stats_.consistency_faults++;
        cksim::Fault fault;
        fault.type = cksim::FaultType::kConsistency;
        fault.address = vaddr;
        ForwardFault(thread, cpu, fault);
        continue;
      }
      cpu.Advance(machine_.cost().mem_word);
      return machine_.memory().ReadWord(t.paddr & ~3u);
    }
    ForwardFault(thread, cpu, t.fault);
    if (GetThread(thread_id) == nullptr || thread->state == ThreadState::kHalted ||
        thread->state == ThreadState::kBlocked) {
      return CkStatus::kBusy;  // the handler blocked or killed the thread
    }
  }
  return CkStatus::kNotFound;
}

CkStatus CacheKernel::GuestStore(KernelId caller, cksim::Cpu& cpu, ThreadId thread_id,
                                 VirtAddr vaddr, uint32_t value) {
  ThreadObject* thread = GetThread(thread_id);
  KernelObject* owner = GetKernel(caller);
  if (thread == nullptr || owner == nullptr || kernels_.SlotAt(thread->kernel_slot) != owner) {
    return CkStatus::kStale;
  }
  for (int attempt = 0; attempt < 3; ++attempt) {
    AddressSpaceObject* space =
        spaces_.Lookup(ckbase::PoolId{thread->space_slot, thread->space_gen});
    if (space == nullptr) {
      return CkStatus::kStale;
    }
    cksim::Mmu::TranslateResult t = cpu.mmu().Translate(
        space->root_table, static_cast<uint16_t>(thread->space_slot), vaddr,
        cksim::Access::kWrite);
    cpu.Advance(t.cycles);
    if (t.ok) {
      if (FrameIsRemote(cksim::PageFrame(t.paddr))) {
        stats_.consistency_faults++;
        cksim::Fault fault;
        fault.type = cksim::FaultType::kConsistency;
        fault.address = vaddr;
        fault.access = cksim::Access::kWrite;
        ForwardFault(thread, cpu, fault);
        continue;
      }
      cpu.Advance(machine_.cost().mem_word);
      machine_.memory().WriteWord(t.paddr & ~3u, value);
      if (t.message_write && config_.signal_on_write) {
        DeliverSignalToFrame(cksim::PageFrame(t.paddr), t.paddr & cksim::kPageOffsetMask,
                             cpu.clock(), &cpu);
      }
      return CkStatus::kOk;
    }
    ForwardFault(thread, cpu, t.fault);
    if (GetThread(thread_id) == nullptr || thread->state == ThreadState::kHalted ||
        thread->state == ThreadState::kBlocked) {
      return CkStatus::kBusy;
    }
  }
  return CkStatus::kNotFound;
}

// ---------------------------------------------------------------------------
// Ready queues
// ---------------------------------------------------------------------------

void CacheKernel::Enqueue(ThreadObject* thread, bool front) {
  ReadyQueue& queue = ready_[thread->cpu][thread->priority];
  if (front) {
    queue.PushFront(thread);
  } else {
    queue.PushBack(thread);
  }
  ready_mask_[thread->cpu] |= uint64_t{1} << thread->priority;
  thread->state = ThreadState::kReady;
}

void CacheKernel::Dequeue(ThreadObject* thread) {
  ReadyQueue& queue = ready_[thread->cpu][thread->priority];
  queue.Remove(thread);
  if (queue.empty()) {
    ready_mask_[thread->cpu] &= ~(uint64_t{1} << thread->priority);
  }
}

ThreadObject* CacheKernel::PickNext(cksim::Cpu& cpu) {
  RollQuotaWindow(cpu);
  // Pass 0 honors quotas; pass 1 runs over-quota threads only when the
  // processor is otherwise idle ("reduced to a low priority so that they only
  // run when the processor is otherwise idle", section 4.3).
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t scan = ready_mask_[cpu.id()]; scan != 0;) {
      int prio = 63 - __builtin_clzll(scan);
      scan &= ~(uint64_t{1} << prio);
      ReadyQueue& queue = ready_[cpu.id()][prio];
      for (ThreadObject* t : queue) {
        KernelObject* owner = kernels_.SlotAt(t->kernel_slot);
        bool degraded = config_.enforce_quotas && owner->over_quota[cpu.id()];
        if (pass == 0 && degraded) {
          continue;
        }
        Dequeue(t);
        return t;
      }
    }
  }
  return nullptr;
}

void CacheKernel::PreemptCurrent(cksim::Cpu& cpu) {
  ThreadObject* cur = CurrentOn(cpu);
  if (cur == nullptr) {
    return;
  }
  cpu.Advance(machine_.cost().context_save);
  cur->state = ThreadState::kReady;
  Enqueue(cur);
  cpu.current_thread = nullptr;
  stats_.preemptions++;
  CK_TRACE(Ring(cpu), obs::EventType::kPreemption, cpu.clock(), cur->priority,
           threads_.IdOf(cur).Packed());
}

void CacheKernel::RollQuotaWindow(cksim::Cpu& cpu) {
  if (cpu.clock() - quota_window_start_[cpu.id()] < config_.quota_window) {
    return;
  }
  quota_window_start_[cpu.id()] = cpu.clock();
  for (uint32_t slot = 0; slot < kernels_.capacity(); ++slot) {
    if (!kernels_.IsAllocated(slot)) {
      continue;
    }
    KernelObject* k = kernels_.SlotAt(slot);
    k->weighted_consumed[cpu.id()] = 0;
    k->over_quota[cpu.id()] = false;
  }
}

void CacheKernel::ChargeThread(ThreadObject* thread, cksim::Cpu& cpu, Cycles cycles) {
  thread->cpu_consumed += cycles;
  thread->slice_remaining = thread->slice_remaining > cycles
                                ? thread->slice_remaining - cycles
                                : 0;
  cpu.busy_cycles += cycles;
  Tenant(thread->kernel_slot).guest_cycles += cycles;

  KernelObject* owner = kernels_.SlotAt(thread->kernel_slot);
  // Graduated charging (section 4.3): a premium for high-priority execution,
  // a discount for low. weight/16 ranges from 0.5 at priority 0 to ~2.4 at 31.
  uint64_t weighted = cycles * (8 + thread->priority) / 16;
  owner->weighted_consumed[cpu.id()] += weighted;
  cpu.Advance(machine_.cost().quota_account);

  if (config_.enforce_quotas && owner->cpu_percent[cpu.id()] < 100 &&
      !owner->over_quota[cpu.id()]) {
    uint64_t budget =
        static_cast<uint64_t>(owner->cpu_percent[cpu.id()]) * config_.quota_window / 100;
    if (owner->weighted_consumed[cpu.id()] > budget) {
      owner->over_quota[cpu.id()] = true;
      stats_.quota_degradations++;
      CK_TRACE(Ring(cpu), obs::EventType::kQuotaDegrade, cpu.clock(),
               owner->cpu_percent[cpu.id()], thread->kernel_slot);
    }
  }
}

// ---------------------------------------------------------------------------
// The dispatch loop
// ---------------------------------------------------------------------------

void CacheKernel::OnCpuTurn(cksim::Cpu& cpu) {
  if (knobs_.cpus_parallel && machine_.cpu_count() > 1) {
    BatchTurn(cpu);
    return;
  }
  SerialTurn(cpu);
}

// One classic serial turn, expressed over the batch primitives so that a
// batch of one is literally the serial path (the differential suites compare
// the two directly).
void CacheKernel::SerialTurn(cksim::Cpu& cpu) {
  GuestRunJob job;
  switch (PrepareTurn(cpu, &job)) {
    case TurnPrep::kIdle:
      return;  // idle turn or discarded thread, fully handled
    case TurnPrep::kGuestJob:
      RunBatchJob(job);
      CommitGuestRun(job);
      break;
    case TurnPrep::kInline: {
      ThreadObject* current = CurrentOn(cpu);
      if (current->native != nullptr) {
        RunNative(current, cpu);
      } else {
        RunGuest(current, cpu);
      }
      break;
    }
  }
  FinishTurn(cpu);
}

void CacheKernel::FinishTurn(cksim::Cpu& cpu) {
  // Time-slice expiry: round-robin within the priority (section 4.3).
  ThreadObject* still = CurrentOn(cpu);
  if (still != nullptr && still->slice_remaining == 0) {
    PreemptCurrent(cpu);
  }
}

// First half of a CPU turn: deferred events, signal drains, preemption scans
// and dispatch. Classifies the dispatched work: kIdle = nothing to run (idle
// advance or discard, fully handled here); kGuestJob = an eligible guest
// quantum, prepared into *job, signal entry already delivered; kInline = a
// native thread or a guest that must run interleaved with kernel state (its
// space maps a shared frame, or maps signal-on-write message pages).
//
// Eligibility deliberately ignores the fastpath/trace knobs: a slow-path
// quantum of an exclusive space is just as thread-safe, and keying the batch
// shape on an acceleration knob would desynchronize the fast-vs-slow
// differential suites.
CacheKernel::TurnPrep CacheKernel::PrepareTurn(cksim::Cpu& cpu, GuestRunJob* job) {
  // Tiered-memory maintenance (DRAM trim + hot-page promotion) runs at the
  // head of turn preparation: serial in both dispatch modes (BatchTurn's
  // phase 1 prepares CPUs one at a time in deterministic order), so every
  // tier transition is a deterministic serial point.
  TierMaintenance(cpu);

  // Application-kernel deferred events due on this CPU's clock.
  while (!app_events_.empty() && app_events_.front().at <= cpu.clock()) {
    AppEvent event = std::move(app_events_.front());
    app_events_.erase(app_events_.begin());
    KernelObject* k = kernels_.Lookup(event.kernel);
    if (k != nullptr) {
      CkApi api(*this, KernelId{event.kernel}, cpu);
      event.fn(api);
    }
  }

  DrainPendingSignals(cpu);

  ThreadObject* current = CurrentOn(cpu);
  if (current != nullptr) {
    // Priority preemption: a higher-priority thread readied since last turn.
    // (Double shift: current->priority may be 63, and a single >>64 is UB.)
    if ((ready_mask_[cpu.id()] >> current->priority) >> 1 != 0) {
      PreemptCurrent(cpu);
      current = nullptr;
    }
    // Quota preemption: a degraded kernel's thread runs only when the
    // processor is otherwise idle (section 4.3), so any ready non-degraded
    // thread takes the processor at the next dispatch boundary.
    if (current != nullptr && config_.enforce_quotas &&
        kernels_.SlotAt(current->kernel_slot)->over_quota[cpu.id()]) {
      bool other_waiting = false;
      for (uint32_t prio = 0; prio < config_.priority_levels && !other_waiting; ++prio) {
        for (ThreadObject* t : ready_[cpu.id()][prio]) {
          if (!kernels_.SlotAt(t->kernel_slot)->over_quota[cpu.id()]) {
            other_waiting = true;
            break;
          }
        }
      }
      if (other_waiting) {
        PreemptCurrent(cpu);
        current = nullptr;
      }
    }
  }

  if (current == nullptr) {
    current = PickNext(cpu);
    if (current == nullptr) {
      stats_.idle_turns++;
      // Jump idle CPUs forward to the next interesting moment so pending
      // cross-CPU work is not crawled toward in idle_tick steps.
      Cycles target = cpu.clock() + machine_.cost().idle_tick;
      if (!pending_signals_[cpu.id()].empty()) {
        target = std::max(cpu.clock() + 1, std::min(target, pending_signals_[cpu.id()].front().due));
      }
      cpu.AdvanceTo(target);
      return TurnPrep::kIdle;
    }
    current->state = ThreadState::kRunning;
    cpu.current_thread = current;
    current->slice_remaining = config_.time_slice;
    cpu.Advance(machine_.cost().context_restore);
    stats_.context_switches++;
    CK_TRACE(Ring(cpu), obs::EventType::kContextSwitch, cpu.clock(), current->priority,
             threads_.IdOf(current).Packed());
    // Dispatch is the recency signal for descriptor second chance: the
    // thread, its space and its owning kernel are all in active use.
    threads_.Touch(threads_.SlotOf(current));
    spaces_.Touch(current->space_slot);
    kernels_.Touch(current->kernel_slot);
  }

  if (current->native != nullptr) {
    return TurnPrep::kInline;
  }
  AddressSpaceObject* space =
      spaces_.Lookup(ckbase::PoolId{current->space_slot, current->space_gen});
  if (space == nullptr) {
    // Invariant violation: threads are unloaded with their space.
    UnloadThreadInternal(current, cpu, UnloadCause::kDiscard);
    return TurnPrep::kIdle;
  }
  if (space->shared_frame_refs != 0 ||
      (config_.signal_on_write && space->message_maps > 0)) {
    return TurnPrep::kInline;
  }

  MaybeEnterSignalHandler(current, cpu);
  job->thread = current;
  job->cpu = &cpu;
  job->space = space;
  job->thread_id = IdOfThread(current);
  return TurnPrep::kGuestJob;
}

void CacheKernel::RunGuest(ThreadObject* thread, cksim::Cpu& cpu) {
  AddressSpaceObject* space =
      spaces_.Lookup(ckbase::PoolId{thread->space_slot, thread->space_gen});
  if (space == nullptr) {
    // Invariant violation: threads are unloaded with their space.
    UnloadThreadInternal(thread, cpu, UnloadCause::kDiscard);
    return;
  }

  MaybeEnterSignalHandler(thread, cpu);

  GuestRunJob job;
  job.thread = thread;
  job.cpu = &cpu;
  job.space = space;
  job.thread_id = IdOfThread(thread);
  RunBatchJob(job);
  CommitGuestRun(job);
}

// Execute one prepared guest quantum. Shared-kernel-state free: everything it
// touches is per-CPU (clock, TLB, micro-TLB, trace cache, sampler), staged in
// the job, or element-disjoint across eligible jobs (frame data, frame
// generations, decoded-frame slots, the space's own page tables) -- this is
// the function batch worker threads run.
void CacheKernel::RunBatchJob(GuestRunJob& job) {
  job.before = job.cpu->clock();
  GuestBusImpl bus(*this, *job.cpu, job.space,
                   static_cast<uint16_t>(job.thread->space_slot));
  job.run = ckisa::Run(job.thread->vm, bus, config_.dispatch_budget);
  job.staged_consistency_faults = bus.staged_consistency_faults();
  job.trace_stats = bus.trace_stats();
}

// Fold a quantum's results into kernel state and handle its exit event.
// Serial-only: charges, stats, tenant accounts, trap/fault/halt forwarding.
void CacheKernel::CommitGuestRun(GuestRunJob& job) {
  ThreadObject* thread = job.thread;
  cksim::Cpu& cpu = *job.cpu;
  const ckisa::RunResult& run = job.run;

  ChargeThread(thread, cpu, cpu.clock() - job.before);
  stats_.guest_instructions += run.instructions;
  stats_.consistency_faults += job.staged_consistency_faults;
  stats_.exec_trace_hits += job.trace_stats.hits;
  stats_.exec_trace_misses += job.trace_stats.misses;
  stats_.exec_trace_invalidations += job.trace_stats.invalidations;
  stats_.exec_trace_builds += job.trace_stats.builds;
  CostAccount& account = Tenant(thread->kernel_slot);
  account.guest_instructions += run.instructions;
  account.exec_trace_hits += job.trace_stats.hits;
  account.exec_trace_misses += job.trace_stats.misses;
  account.exec_trace_invalidations += job.trace_stats.invalidations;
  account.exec_trace_builds += job.trace_stats.builds;

  // Harvest the quantum's profiler sample (if one came due) while the owning
  // kernel slot is still known -- the interpreter only latched the PC.
  ckisa::PcSampler& sampler = samplers_[cpu.id()];
  if (sampler.pending) {
    sampler.pending = false;
    RecordPcSample(thread->kernel_slot, sampler.last_pc, cpu);
  }

  switch (run.event) {
    case ckisa::RunEvent::kBudgetExhausted:
      break;
    case ckisa::RunEvent::kTrap:
      if (run.trap_number < kFirstAppTrap) {
        HandleCkTrap(thread, cpu, run.trap_number);
      } else {
        ForwardTrap(thread, cpu, run.trap_number);
      }
      break;
    case ckisa::RunEvent::kFault:
      ForwardFault(thread, cpu, run.fault);
      break;
    case ckisa::RunEvent::kHalt: {
      ThreadId id = IdOfThread(thread);
      uint64_t cookie = thread->cookie;
      KernelObject* owner = kernels_.SlotAt(thread->kernel_slot);
      thread->state = ThreadState::kHalted;
      cpu.current_thread = nullptr;
      CkApi api(*this, IdOfKernel(owner), cpu);
      owner->handlers->OnThreadHalt(id, cookie, api);
      break;
    }
  }
}

// A collected job survives only while its exact thread/space binding does:
// phase-1 side effects and earlier commits' handlers can unload, block or
// re-dispatch it.
bool CacheKernel::GuestJobStillValid(const GuestRunJob& job) {
  ThreadObject* thread = GetThread(job.thread_id);
  if (thread != job.thread || thread == nullptr) {
    return false;
  }
  if (thread->state != ThreadState::kRunning || CurrentOn(*job.cpu) != thread) {
    return false;
  }
  AddressSpaceObject* space =
      spaces_.Lookup(ckbase::PoolId{thread->space_slot, thread->space_gen});
  return space == job.space;
}

// One batched dispatch round: prepare a turn for every CPU in the machine's
// own (clock, index) dispatch order, execute the collected independent guest
// quanta -- on host worker threads when enabled -- and commit serially in
// batch order. With cpu_host_threads == 0 the identical protocol runs inline
// on the calling thread, which is the determinism reference the parallel
// configuration is tested against (docs/PERFORMANCE.md).
void CacheKernel::BatchTurn(cksim::Cpu& first) {
  // Snapshot the dispatch order. `first` is the machine's min-clock pick, so
  // it sorts to the front by construction; later candidates are the turns the
  // machine would have taken next had nothing readied in between.
  (void)first;
  const uint32_t cpu_count = machine_.cpu_count();
  uint32_t order[kMaxCpus];
  uint32_t ordered = 0;
  for (uint32_t c = 0; c < cpu_count && c < kMaxCpus; ++c) {
    Cycles clock = machine_.cpu(c).clock();
    uint32_t at = ordered;
    while (at > 0) {
      Cycles prev = machine_.cpu(order[at - 1]).clock();
      if (prev < clock || (prev == clock && order[at - 1] < c)) {
        break;
      }
      order[at] = order[at - 1];
      --at;
    }
    order[at] = c;
    ++ordered;
  }

  GuestRunJob jobs[kMaxCpus];
  bool valid[kMaxCpus] = {false};
  uint32_t job_count = 0;

  // Phase 1 (serial): prepare turns, collecting eligible guest quanta.
  // Anything that must interleave with kernel state -- a native thread, an
  // ineligible guest, a second quantum in an already-collected space -- runs
  // inline and ends the scan (deferring a same-space duplicate would never
  // advance its CPU's clock: livelock).
  for (uint32_t i = 0; i < ordered; ++i) {
    cksim::Cpu& cpu = machine_.cpu(order[i]);
    TurnPrep prep = PrepareTurn(cpu, &jobs[job_count]);
    if (prep == TurnPrep::kIdle) {
      continue;
    }
    if (prep == TurnPrep::kGuestJob) {
      bool duplicate = false;
      for (uint32_t j = 0; j < job_count; ++j) {
        if (jobs[j].space == jobs[job_count].space) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        valid[job_count] = true;
        ++job_count;
        continue;
      }
      // Batch-of-one semantics for the duplicate, then stop collecting.
      RunBatchJob(jobs[job_count]);
      CommitGuestRun(jobs[job_count]);
      FinishTurn(cpu);
      break;
    }
    ThreadObject* current = CurrentOn(cpu);
    if (current != nullptr) {
      if (current->native != nullptr) {
        RunNative(current, cpu);
      } else {
        RunGuest(current, cpu);
      }
    }
    FinishTurn(cpu);
    break;
  }

  // Phase-1 side effects (deferred app events, signal drains, the inline run
  // above) can unload a collected thread or newly share its space's frames;
  // re-validate everything before any quantum executes.
  uint32_t runnable = 0;
  for (uint32_t j = 0; j < job_count; ++j) {
    valid[j] = GuestJobStillValid(jobs[j]) && jobs[j].space->shared_frame_refs == 0 &&
               !(config_.signal_on_write && jobs[j].space->message_maps > 0);
    if (valid[j]) {
      ++runnable;
    }
  }

  // Phase 2: execute the surviving quanta. Worker pool or inline -- the same
  // jobs run the same guest instructions against disjoint frames either way.
  if (runnable >= 2 && knobs_.cpu_host_threads >= 2) {
    RunJobsOnWorkers(jobs, valid, job_count);
  } else {
    for (uint32_t j = 0; j < job_count; ++j) {
      if (valid[j]) {
        RunBatchJob(jobs[j]);
      }
    }
  }

  // Phase 3 (serial, batch order): fold results back in. A commit's handlers
  // can unload a later job's thread; that quantum already ran (its stores are
  // architecturally visible) but its charges and exit event die with the
  // thread -- identically in inline and threaded runs, so the differential
  // suites see one behavior.
  for (uint32_t j = 0; j < job_count; ++j) {
    if (!valid[j]) {
      continue;
    }
    if (GuestJobStillValid(jobs[j])) {
      CommitGuestRun(jobs[j]);
    }
    FinishTurn(*jobs[j].cpu);
  }
}

// ---------------------------------------------------------------------------
// Batch worker pool (generation-counted barrier, same shape as
// cksim::Cluster's window workers)
// ---------------------------------------------------------------------------

void CacheKernel::RunJobsOnWorkers(GuestRunJob* jobs, const bool* valid, uint32_t count) {
  uint32_t want = knobs_.cpu_host_threads < kMaxCpus ? knobs_.cpu_host_threads : kMaxCpus;
  StartCpuWorkers(want);
  std::unique_lock<std::mutex> lock(batch_mu_);
  batch_jobs_ = jobs;
  batch_valid_ = valid;
  batch_job_count_ = count;
  batch_next_.store(0, std::memory_order_relaxed);
  batch_unfinished_ = static_cast<uint32_t>(cpu_workers_.size());
  ++batch_generation_;
  batch_start_cv_.notify_all();
  batch_done_cv_.wait(lock, [&] { return batch_unfinished_ == 0; });
  batch_jobs_ = nullptr;
  batch_valid_ = nullptr;
  batch_job_count_ = 0;
}

void CacheKernel::StartCpuWorkers(uint32_t count) {
  while (cpu_workers_.size() < count) {
    cpu_workers_.emplace_back([this] { CpuWorkerMain(); });
  }
}

void CacheKernel::StopCpuWorkers() {
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    if (cpu_workers_.empty()) {
      return;
    }
    batch_shutdown_ = true;
  }
  batch_start_cv_.notify_all();
  for (std::thread& worker : cpu_workers_) {
    worker.join();
  }
  cpu_workers_.clear();
  std::lock_guard<std::mutex> lock(batch_mu_);
  batch_shutdown_ = false;
}

void CacheKernel::CpuWorkerMain() {
  uint64_t seen_generation = 0;
  for (;;) {
    GuestRunJob* jobs = nullptr;
    const bool* valid = nullptr;
    uint32_t count = 0;
    {
      std::unique_lock<std::mutex> lock(batch_mu_);
      batch_start_cv_.wait(
          lock, [&] { return batch_shutdown_ || batch_generation_ != seen_generation; });
      if (batch_shutdown_) {
        return;
      }
      seen_generation = batch_generation_;
      jobs = batch_jobs_;
      valid = batch_valid_;
      count = batch_job_count_;
    }
    for (;;) {
      uint32_t index = batch_next_.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) {
        break;
      }
      if (valid[index]) {
        RunBatchJob(jobs[index]);
      }
    }
    std::lock_guard<std::mutex> lock(batch_mu_);
    if (--batch_unfinished_ == 0) {
      batch_done_cv_.notify_all();
    }
  }
}

void CacheKernel::RunNative(ThreadObject* thread, cksim::Cpu& cpu) {
  KernelObject* owner = kernels_.SlotAt(thread->kernel_slot);
  ThreadId id = IdOfThread(thread);
  NativeCtx ctx(CkApi(*this, IdOfKernel(owner), cpu), id, thread->cookie);

  // Deliver queued address-valued signals before the step.
  while (thread->signal_count > 0) {
    VirtAddr addr = thread->signal_queue[thread->signal_head];
    thread->signal_head = (thread->signal_head + 1) % ThreadObject::kSignalQueueDepth;
    thread->signal_count--;
    thread->signals_taken++;
    thread->native->OnSignal(addr, ctx);
    if (GetThread(id) != thread || thread->state != ThreadState::kRunning) {
      return;  // the handler unloaded or blocked the thread
    }
  }

  Cycles before = cpu.clock();
  NativeOutcome outcome = thread->native->Step(ctx);
  if (GetThread(id) != thread) {
    return;  // the step unloaded this thread
  }
  Cycles consumed = cpu.clock() - before;
  if (consumed == 0) {
    cpu.Advance(machine_.cost().instruction);
    consumed = machine_.cost().instruction;
  }
  ChargeThread(thread, cpu, consumed);

  switch (outcome.action) {
    case NativeOutcome::Action::kYield:
      break;
    case NativeOutcome::Action::kBlock:
      if (thread->state == ThreadState::kRunning) {
        // A signal may have raced in during the step; stay runnable then.
        if (thread->signal_count > 0) {
          break;
        }
        thread->state = ThreadState::kBlocked;
        cpu.current_thread = nullptr;
        cpu.Advance(machine_.cost().context_save);
      }
      break;
    case NativeOutcome::Action::kHalt: {
      thread->state = ThreadState::kHalted;
      cpu.current_thread = nullptr;
      CkApi api(*this, IdOfKernel(owner), cpu);
      owner->handlers->OnThreadHalt(id, thread->cookie, api);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Forwarding (Figure 2)
// ---------------------------------------------------------------------------

void CacheKernel::ForwardFault(ThreadObject* thread, cksim::Cpu& cpu, const cksim::Fault& fault) {
  const cksim::CostModel& cost = machine_.cost();
  stats_.faults_forwarded++;
  Tenant(thread->kernel_slot).faults_forwarded++;
  // Every forwarded fault opens a causal span. Allocation is unconditional
  // (the counter is machine-local deterministic state), so enabling tracing
  // never changes the id sequence the differential suites compare.
  uint32_t fault_span = machine_.AllocSpanId();
  fault_trace_ = FaultTrace{};
  fault_trace_.trap_entry = cpu.clock();
  CK_TRACE(Ring(cpu), obs::EventType::kSpanBegin, cpu.clock(),
           static_cast<uint16_t>(fault.type), fault_span);
  CK_TRACE(Ring(cpu), obs::EventType::kFaultTrapEntry, cpu.clock(),
           static_cast<uint32_t>(fault.type), fault.address);

  // Step 1-2: the access error handler stores the faulting thread's state,
  // switches it to the application kernel's space and exception stack, and
  // starts it in the kernel's fault handler.
  cpu.Advance(cost.trap_entry + cost.context_save + cost.handler_dispatch);

  AddressSpaceObject* space = spaces_.SlotAt(thread->space_slot);
  KernelObject* owner = kernels_.SlotAt(thread->kernel_slot);

  FaultForward forward;
  ThreadId id = IdOfThread(thread);
  forward.thread = id;
  forward.thread_cookie = thread->cookie;
  forward.space_cookie = space->cookie;
  forward.fault = fault;
  if (fault.type == cksim::FaultType::kProtection) {
    PhysAddr leaf = LeafPteAddr(space, fault.address, /*create=*/false, cpu);
    if (leaf != 0) {
      uint32_t pte = machine_.memory().ReadWord(leaf);
      forward.copy_on_write = cksim::PteValid(pte) && (pte & cksim::kPteCopyOnWrite) != 0;
    }
  }

  fault_trace_.handler_start = cpu.clock();
  CK_TRACE(Ring(cpu), obs::EventType::kFaultHandlerStart, cpu.clock(),
           static_cast<uint32_t>(fault.type), id.id.Packed());
  CkApi api(*this, IdOfKernel(owner), cpu);
  cpu.Advance(cost.app_handler_base);
  HandlerAction action = owner->handlers->HandleFault(forward, api);

  // The handler may have unloaded or blocked the thread; revalidate.
  ThreadObject* revalidated = GetThread(id);
  if (revalidated == nullptr) {
    if (CurrentOn(cpu) == thread) {
      cpu.current_thread = nullptr;
    }
    return;
  }

  switch (action) {
    case HandlerAction::kResume:
    case HandlerAction::kResumed:
      // Step 5-6: exception processing complete; the thread re-executes the
      // faulting access.
      cpu.Advance(cost.trap_exit);
      if (thread->state == ThreadState::kBlocked) {
        thread->state = ThreadState::kReady;
        Enqueue(thread, /*front=*/true);
      }
      fault_trace_.resumed = cpu.clock();
      CK_TRACE(Ring(cpu), obs::EventType::kFaultResumed, cpu.clock(),
               static_cast<uint32_t>(fault.type), id.id.Packed());
      RecordFaultTrace(fault_trace_);
      break;
    case HandlerAction::kBlock:
      if (CurrentOn(cpu) == thread) {
        cpu.current_thread = nullptr;
      }
      if (thread->ready_node.linked()) {
        Dequeue(thread);
      }
      thread->state = ThreadState::kBlocked;
      cpu.Advance(cost.context_save);
      break;
    case HandlerAction::kTerminate:
      if (CurrentOn(cpu) == thread) {
        cpu.current_thread = nullptr;
      }
      if (thread->ready_node.linked()) {
        Dequeue(thread);
      }
      thread->state = ThreadState::kHalted;
      owner->handlers->OnThreadHalt(id, forward.thread_cookie, api);
      // The owning kernel declined to handle the fault: a fatal fault. Let
      // the observability layer dump a flight record before state moves on.
      if (fatal_hook_) {
        fatal_hook_("fatal-fault");
      }
      break;
  }
}

void CacheKernel::ForwardTrap(ThreadObject* thread, cksim::Cpu& cpu, uint16_t number) {
  const cksim::CostModel& cost = machine_.cost();
  stats_.traps_forwarded++;
  CK_TRACE(Ring(cpu), obs::EventType::kTrapForward, cpu.clock(), number,
           threads_.IdOf(thread).Packed());

  // Same redirect mechanism as faults (section 2.3 trap forwarding).
  cpu.Advance(cost.trap_entry + cost.handler_dispatch);

  KernelObject* owner = kernels_.SlotAt(thread->kernel_slot);
  TrapForward forward;
  ThreadId id = IdOfThread(thread);
  forward.thread = id;
  forward.thread_cookie = thread->cookie;
  forward.number = number;
  for (int i = 0; i < 6; ++i) {
    forward.args[i] = thread->vm.regs[ckisa::kRegA0 + i];
  }

  CkApi api(*this, IdOfKernel(owner), cpu);
  cpu.Advance(cost.app_handler_base);
  TrapAction action = owner->handlers->HandleTrap(forward, api);

  ThreadObject* revalidated = GetThread(id);
  if (revalidated == nullptr) {
    if (CurrentOn(cpu) == thread) {
      cpu.current_thread = nullptr;
    }
    return;
  }

  switch (action.action) {
    case HandlerAction::kResume:
    case HandlerAction::kResumed:
      if (action.has_return_value) {
        thread->vm.regs[ckisa::kRegA0] = action.return_value;
      }
      cpu.Advance(cost.trap_exit);
      if (thread->state == ThreadState::kBlocked) {
        thread->state = ThreadState::kReady;
        Enqueue(thread, /*front=*/true);
      }
      break;
    case HandlerAction::kBlock:
      if (CurrentOn(cpu) == thread) {
        cpu.current_thread = nullptr;
      }
      if (thread->ready_node.linked()) {
        Dequeue(thread);
      }
      thread->state = ThreadState::kBlocked;
      cpu.Advance(cost.context_save);
      break;
    case HandlerAction::kTerminate:
      if (CurrentOn(cpu) == thread) {
        cpu.current_thread = nullptr;
      }
      if (thread->ready_node.linked()) {
        Dequeue(thread);
      }
      thread->state = ThreadState::kHalted;
      owner->handlers->OnThreadHalt(id, forward.thread_cookie, api);
      break;
  }
}

void CacheKernel::HandleCkTrap(ThreadObject* thread, cksim::Cpu& cpu, uint16_t number) {
  const cksim::CostModel& cost = machine_.cost();
  switch (number) {
    case kTrapSignalReturn:
      cpu.Advance(cost.signal_return);
      if (thread->in_signal) {
        thread->in_signal = false;
        thread->vm.pc = thread->saved_pc;
        // Drain the next queued signal, if any.
        MaybeEnterSignalHandler(thread, cpu);
      }
      break;

    case kTrapSignal: {
      // a0 = virtual address of the new message in the sender's space.
      cpu.Advance(cost.trap_entry + cost.call_gate);
      AddressSpaceObject* space = spaces_.SlotAt(thread->space_slot);
      VirtAddr vaddr = thread->vm.regs[ckisa::kRegA0];
      cksim::Mmu::TranslateResult t = cpu.mmu().Translate(
          space->root_table, static_cast<uint16_t>(thread->space_slot), vaddr,
          cksim::Access::kRead);
      cpu.Advance(t.cycles);
      if (t.ok) {
        // Must be a message-mode mapping; otherwise the signal is ignored
        // (the guest misused the trap).
        PhysAddr leaf = LeafPteAddr(space, vaddr, /*create=*/false, cpu);
        uint32_t pte = leaf != 0 ? machine_.memory().ReadWord(leaf) : 0;
        if (cksim::PteValid(pte) && (pte & cksim::kPteMessage) != 0) {
          machine_.DeliverDoorbell(t.paddr, cpu.clock());
          DeliverSignalToFrame(cksim::PageFrame(t.paddr), t.paddr & cksim::kPageOffsetMask,
                               cpu.clock(), &cpu);
        }
      } else {
        // Sender's mapping is not loaded: deliver the mapping fault so the
        // application kernel loads all mappings for the message page
        // (multi-mapping consistency, section 4.2).
        thread->vm.pc -= 4;  // re-execute the trap after the fault resolves
        ForwardFault(thread, cpu, t.fault);
        return;
      }
      cpu.Advance(cost.trap_exit);
      break;
    }

    case kTrapAwaitSignal:
      cpu.Advance(cost.call_gate);
      if (thread->signal_count > 0) {
        if (thread->signal_handler != 0) {
          MaybeEnterSignalHandler(thread, cpu);
        } else {
          VirtAddr addr = thread->signal_queue[thread->signal_head];
          thread->signal_head = (thread->signal_head + 1) % ThreadObject::kSignalQueueDepth;
          thread->signal_count--;
          thread->signals_taken++;
          thread->vm.regs[ckisa::kRegA0] = addr;
        }
      } else {
        // Suspend, staying loaded, so the arrival resumes quickly
        // ("a thread can also remain loaded ... when it suspends itself by
        // waiting on a signal", section 2.3).
        thread->state = ThreadState::kBlocked;
        cpu.current_thread = nullptr;
        cpu.Advance(cost.context_save);
      }
      break;

    case kTrapYield:
      thread->slice_remaining = 0;
      break;

    default:
      // Unknown Cache Kernel trap: treat as an application trap so the owning
      // kernel can decide (it usually terminates the thread).
      ForwardTrap(thread, cpu, number);
      break;
  }
}

}  // namespace ck

// The Cache Kernel: supervisor-mode cache of kernels, address spaces,
// threads and page mappings (the paper's core contribution).
//
// The primary interface is load/unload of the four object types plus the
// forwarding of faults, traps and signals; policy lives entirely in the
// application kernels above. The Cache Kernel:
//   * keeps descriptors in fixed pools and reclaims by dependency-ordered
//     writeback (Figure 6) when a load finds no free descriptor;
//   * maintains real 68040-format page tables in simulated physical memory
//     and the 16-byte-record physical memory map of section 4.1;
//   * schedules loaded threads with fixed priorities, per-priority time
//     slicing and per-kernel processor quotas (section 4.3);
//   * implements memory-based messaging with a per-CPU reverse-TLB fast path
//     and multi-mapping consistency (sections 2.2 and 4.2);
//   * enforces the resource grants recorded in kernel objects: page-group
//     access arrays, processor percentages, priority caps, lock limits.
//
// It attaches to a cksim::Machine as both the MachineClient (the dispatch
// loop) and the SignalSink (device signal delivery).

#ifndef SRC_CK_CACHE_KERNEL_H_
#define SRC_CK_CACHE_KERNEL_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/fixed_pool.h"
#include "src/base/histogram.h"
#include "src/base/status.h"
#include "src/obs/trace.h"
#include "src/ck/appkernel_iface.h"
#include "src/ck/config.h"
#include "src/ck/ids.h"
#include "src/ck/object_cache.h"
#include "src/ck/objects.h"
#include "src/ck/physmap.h"
#include "src/ck/table_arena.h"
#include "src/isa/fastpath.h"
#include "src/isa/interpreter.h"
#include "src/sim/devices.h"
#include "src/sim/machine.h"

namespace obs {
class Registry;
}

namespace ck {

using ckbase::CkStatus;
using ckbase::Result;

// Counters exposed to tests and benches.
//
// The unload counters partition: every loaded object is unloaded exactly
// once, as an owner-requested explicit unload OR as an involuntary writeback
// (a capacity-forced victim or a Figure 6 cascade dependent), so
//   loads[t] == explicit_unloads[t] + writebacks[t] + loaded_count(t)
// holds per type at any quiescent point (tests/property_test.cc asserts it
// after randomized storms). Reclamations count the top-level victims within
// writebacks (cascade dependents are writebacks but not reclamations).
struct CkStats {
  uint64_t loads[kObjectTypeCount] = {0};
  uint64_t writebacks[kObjectTypeCount] = {0};       // reclamation + cascade
  uint64_t explicit_unloads[kObjectTypeCount] = {0}; // owner-requested
  uint64_t reclamations[kObjectTypeCount] = {0};     // capacity-forced victims
  uint64_t reclaim_scan_steps[kObjectTypeCount] = {0};  // candidates examined
  uint64_t load_failures = 0;
  uint64_t faults_forwarded = 0;
  uint64_t traps_forwarded = 0;
  uint64_t signals_delivered_fast = 0;  // reverse-TLB hit to active thread
  uint64_t signals_delivered_slow = 0;  // two-stage pmap lookup
  uint64_t signals_queued = 0;
  uint64_t signals_dropped = 0;
  uint64_t consistency_faults = 0;
  uint64_t guest_instructions = 0;  // guest instructions retired (all CPUs)
  uint64_t context_switches = 0;
  uint64_t preemptions = 0;
  uint64_t idle_turns = 0;
  uint64_t quota_degradations = 0;
  uint64_t stale_id_errors = 0;
  // Superblock trace cache (src/isa/fastpath.h), summed over all CPUs.
  // Appended at the end: the flight recorder frames CkStats as a counted
  // u64 array, which tolerates growth only at the tail.
  uint64_t exec_trace_hits = 0;
  uint64_t exec_trace_misses = 0;
  uint64_t exec_trace_invalidations = 0;
  uint64_t exec_trace_builds = 0;
  // Tiered physical memory (docs/TIERING.md). Every tier transition goes
  // through one mutation point, so two flow-conservation identities hold at
  // any point (tests/property_test.cc asserts them after tiering storms):
  //   tier_admissions + tier_promotions ==
  //       tier_demotions + tier_evictions + tier_release_dram + dram_count
  //   tier_demotions == tier_promotions + tier_release_slow + slow_count
  uint64_t tier_admissions = 0;    // untracked -> DRAM
  uint64_t tier_demotions = 0;     // DRAM -> slow
  uint64_t tier_promotions = 0;    // slow -> DRAM (hot-page promotion)
  uint64_t tier_evictions = 0;     // DRAM -> untracked via full evict mode
  uint64_t tier_release_dram = 0;  // DRAM -> untracked via frame-pool release
  uint64_t tier_release_slow = 0;  // slow -> untracked via frame-pool release
  uint64_t tier_scan_steps = 0;    // frames examined by demotion + promotion scans
};

// Per-app-kernel cost attribution, indexed by kernel slot. Every increment
// mirrors a CkStats increment (or a guest-execution charge), attributed to
// the kernel that caused the work, so summing any field across slots equals
// the corresponding machine-level CkStats total (tests/tenant_test.cc checks
// this conservation). Slots are reused without resetting the account --
// attribution is "work done by whoever held the slot", and conservation is
// over sums, so reuse is harmless. POD on purpose: the cluster differential
// memcmp-compares whole accounts.
//
// Attribution rules: loads charge the calling kernel; writebacks and explicit
// unloads charge the object's owner (a kernel object is its own owner);
// reclaim scan steps charge the kernel whose load forced the scan; guest
// instructions/cycles and forwarded faults charge the running thread's owner.
struct CostAccount {
  uint64_t loads[kObjectTypeCount] = {0};
  uint64_t writebacks[kObjectTypeCount] = {0};
  uint64_t explicit_unloads[kObjectTypeCount] = {0};
  uint64_t reclaim_scan_steps[kObjectTypeCount] = {0};
  uint64_t guest_instructions = 0;
  uint64_t guest_cycles = 0;       // cycles charged to this kernel's threads
  uint64_t faults_forwarded = 0;
  uint64_t prof_samples = 0;       // profiler PC samples harvested
  // Trace-cache work done while this kernel's threads ran (mirrors the
  // CkStats exec_trace_* totals, like guest_instructions).
  uint64_t exec_trace_hits = 0;
  uint64_t exec_trace_misses = 0;
  uint64_t exec_trace_invalidations = 0;
  uint64_t exec_trace_builds = 0;
  // File-service client cache work done by this kernel's threads (src/fs),
  // recorded through ChargeFs. Machine-level ck.fs.* metrics are the sums of
  // these fields across slots, so conservation holds by construction.
  uint64_t fs_hits = 0;
  uint64_t fs_misses = 0;
  uint64_t fs_readahead_issued = 0;
  uint64_t fs_readahead_useful = 0;
  uint64_t fs_invalidations = 0;
  // Tiered-memory work attributed to this kernel: admissions/demotions/
  // evictions charge the frame's owning tenant when one exists (the kernel of
  // the first virtual mapping) and otherwise the kernel whose load forced the
  // transition; promotions always charge the owner.
  uint64_t tier_admissions = 0;
  uint64_t tier_demotions = 0;
  uint64_t tier_promotions = 0;
  uint64_t tier_evictions = 0;
};

// Which CostAccount fs_* counter a ChargeFs call lands in.
enum class FsCounter : uint8_t {
  kHit,
  kMiss,
  kReadaheadIssued,
  kReadaheadUseful,
  kInvalidation,
};

// Timestamps of the Figure 2 steps for one forwarded fault. The most recent
// trace is always available; completed traces also accumulate into per-step
// histograms and a bounded last-N history ring.
struct FaultTrace {
  cksim::Cycles trap_entry = 0;      // step 1: hardware trap into the CK
  cksim::Cycles handler_start = 0;   // step 2: thread redirected to app kernel
  cksim::Cycles mapping_loaded = 0;  // step 4: new mapping descriptor loaded
  cksim::Cycles resumed = 0;         // step 6: faulting thread resumed
};

// Per-step latency distributions over every completed forwarded fault, in
// simulated microseconds (the paper's Figure 2 bars as populations, not a
// single retained sample).
struct FaultStepStats {
  ckbase::Stats transfer;     // steps 1-2: trap entry -> handler start
  ckbase::Stats handle_load;  // steps 3-4: handler start -> mapping loaded
  ckbase::Stats resume;       // steps 5-6: mapping loaded -> resumed
  ckbase::Stats total;        // trap entry -> resumed
};

struct MappingSpec {
  SpaceId space;
  cksim::VirtAddr vaddr = 0;
  cksim::PhysAddr paddr = 0;
  cksim::MapFlags flags;
  bool locked = false;
  ThreadId signal_thread;          // optional: deliver signals on this page
  cksim::PhysAddr cow_source = 0;  // optional: deferred-copy source page
};

struct ThreadSpec {
  SpaceId space;
  uint64_t cookie = 0;
  uint8_t priority = 0;
  uint8_t cpu_hint = 0xff;  // 0xff: round-robin assignment
  bool locked = false;
  bool start_blocked = false;      // load in blocked state (await signal)
  ckisa::VmContext vm;             // guest register state
  NativeProgram* native = nullptr; // native program instead of guest code
  cksim::VirtAddr signal_handler = 0;
  cksim::VirtAddr exception_stack = 0;
};

struct MappingInfo {
  cksim::PhysAddr paddr = 0;
  bool writable = false;
  bool message = false;
  bool referenced = false;
  bool modified = false;
  bool locked = false;
};

class CkApi;

// Why an object is leaving its cache; decides which unload counter it lands
// in (exactly one per object) and whether the owner's writeback handler runs.
enum class UnloadCause : uint8_t {
  kExplicit,  // owner-requested unload -> explicit_unloads
  kReclaim,   // capacity-forced victim -> writebacks (+ reclamations, by Evict)
  kCascade,   // Figure 6 dependent of another unload -> writebacks
  kDiscard,   // dropped without writeback (invariant repair) -> uncounted
};

// Runtime-mutable knobs, separated from CacheKernelConfig so config() stays
// the immutable boot configuration. Initialized from the config at boot.
struct RuntimeKnobs {
  bool fastpath = true;
  // Superblock trace execution on the fast path (no effect with fastpath
  // off). Simulated results are identical either way.
  bool trace_exec = true;
  // Intra-MPM batch dispatch: service all minimum-clock CPUs' turns as one
  // batch with barrier-deferred cross-CPU delivery (see BatchTurn). Changes
  // the (deterministic) interleaving relative to one-turn-at-a-time
  // dispatch; bit-identical between host-serial and host-parallel phase 2.
  bool cpus_parallel = false;
  // Host worker threads executing the batch's guest quanta; 0 or 1 runs
  // them inline on the dispatching thread (the serial reference).
  uint32_t cpu_host_threads = 0;
  // Profiler sampling period in cycles; 0 disables sampling. Samples are
  // taken only at fast-path flush points (see ckisa::PcSampler).
  cksim::Cycles profile_period = 0;
  ReplacementPolicy replacement[kObjectTypeCount] = {
      ReplacementPolicy::kClock, ReplacementPolicy::kClock, ReplacementPolicy::kClock,
      ReplacementPolicy::kClock};
  // Tiered physical memory (docs/TIERING.md; boot defaults in
  // CacheKernelConfig). tier_dram_frames == 0 disables tiering.
  uint32_t tier_dram_frames = 0;
  bool tier_demote = true;  // demote cold frames to the slow tier vs full evict
  cksim::Cycles tier_promote_period = 0;
  uint32_t tier_scan_frames = 64;
};

// Capacity-only backing store for the frame-tier ObjectCache: the cache
// tracks per-frame recency state (load stamps, soft referenced bits, clock
// hand) over physical page frames; the frames themselves live in
// cksim::PhysicalMemory.
class FrameTierStore {
 public:
  explicit FrameTierStore(uint32_t capacity) : capacity_(capacity) {}
  uint32_t capacity() const { return capacity_; }

 private:
  uint32_t capacity_;
};

class CacheKernel : public cksim::MachineClient, public cksim::SignalSink {
 public:
  CacheKernel(cksim::Machine& machine, const CacheKernelConfig& config);
  ~CacheKernel() override;

  CacheKernel(const CacheKernel&) = delete;
  CacheKernel& operator=(const CacheKernel&) = delete;

  // Create the first application kernel (normally the system resource
  // manager) with full permissions on all physical resources, locked
  // (section 3). Must be called exactly once before the machine runs.
  KernelId BootFirstKernel(AppKernel* handlers, uint64_t cookie);
  KernelId first_kernel() const { return first_kernel_; }

  // ---- kernel objects (loadable only by the first kernel, section 2.4) ----
  Result<KernelId> LoadKernel(KernelId caller, cksim::Cpu& cpu, AppKernel* handlers,
                              uint64_t cookie, bool locked);
  CkStatus UnloadKernel(KernelId caller, cksim::Cpu& cpu, KernelId kernel);

  // The special modify operations (optimizations over unload-modify-reload).
  CkStatus GrantPageGroups(KernelId caller, cksim::Cpu& cpu, KernelId kernel,
                           uint32_t first_group, uint32_t count, GroupAccess access);
  CkStatus SetCpuQuota(KernelId caller, cksim::Cpu& cpu, KernelId kernel,
                       const uint8_t percent[kMaxCpus], uint8_t max_priority);
  CkStatus SetLockLimits(KernelId caller, cksim::Cpu& cpu, KernelId kernel,
                         const uint8_t limits[kObjectTypeCount]);

  // ---- address spaces ----
  Result<SpaceId> LoadSpace(KernelId caller, cksim::Cpu& cpu, uint64_t cookie, bool locked);
  CkStatus UnloadSpace(KernelId caller, cksim::Cpu& cpu, SpaceId space);

  // ---- threads ----
  Result<ThreadId> LoadThread(KernelId caller, cksim::Cpu& cpu, const ThreadSpec& spec);
  CkStatus UnloadThread(KernelId caller, cksim::Cpu& cpu, ThreadId thread);
  CkStatus SetThreadPriority(KernelId caller, cksim::Cpu& cpu, ThreadId thread, uint8_t priority);
  CkStatus BlockThread(KernelId caller, cksim::Cpu& cpu, ThreadId thread);
  // Unblock a blocked thread; optionally deposit a return value in guest a0
  // (completing a blocked trap).
  CkStatus ResumeThread(KernelId caller, cksim::Cpu& cpu, ThreadId thread, bool has_return = false,
                        uint32_t return_value = 0);
  // Redirect a guest thread to `pc` with `a0` as argument -- how an
  // application kernel "resumes the thread at the address corresponding to
  // the user-specified UNIX signal handler" after a SEGV (section 2.1).
  CkStatus RedirectThread(KernelId caller, cksim::Cpu& cpu, ThreadId thread, cksim::VirtAddr pc,
                          uint32_t a0);

  // ---- page mappings ----
  CkStatus LoadMapping(KernelId caller, cksim::Cpu& cpu, const MappingSpec& spec);
  // The optimized combined call: load the mapping and restart the faulting
  // thread in one trap (Table 2's "optimized" row).
  CkStatus LoadMappingAndResume(KernelId caller, cksim::Cpu& cpu, const MappingSpec& spec,
                                ThreadId faulting_thread);
  CkStatus UnloadMapping(KernelId caller, cksim::Cpu& cpu, SpaceId space, cksim::VirtAddr vaddr);
  CkStatus UnloadMappingRange(KernelId caller, cksim::Cpu& cpu, SpaceId space,
                              cksim::VirtAddr vaddr, uint32_t pages);
  Result<MappingInfo> QueryMapping(KernelId caller, cksim::Cpu& cpu, SpaceId space,
                                   cksim::VirtAddr vaddr);
  CkStatus LockMapping(KernelId caller, cksim::Cpu& cpu, SpaceId space, cksim::VirtAddr vaddr,
                       bool locked);

  // ---- memory-based messaging ----
  // Deliver an address-valued signal naming `vaddr` in `sender_space` (must
  // be a message-mode mapping). Guests reach this through the signal trap;
  // with the signal-on-write assist enabled, stores reach it directly.
  CkStatus Signal(KernelId caller, cksim::Cpu& cpu, SpaceId sender_space, cksim::VirtAddr vaddr);

  // ---- page contents (resolving deferred copies, zero-fill) ----
  CkStatus CopyPage(KernelId caller, cksim::Cpu& cpu, cksim::PhysAddr dst, cksim::PhysAddr src);
  CkStatus ZeroPage(KernelId caller, cksim::Cpu& cpu, cksim::PhysAddr dst);
  // Direct physical access for application kernels loading program images
  // into frames they own (models the app kernel's identity mapping of its
  // granted memory).
  CkStatus WritePhys(KernelId caller, cksim::Cpu& cpu, cksim::PhysAddr addr, const void* data,
                     uint32_t len);
  CkStatus ReadPhys(KernelId caller, cksim::Cpu& cpu, cksim::PhysAddr addr, void* out,
                    uint32_t len);

  // ---- native application memory access ----
  // Loads/stores issued by native threads through their address space: the
  // moral equivalent of a guest load/store instruction (applications "linked
  // directly in the same address space with its application kernel" still
  // access memory through their mappings, section 2.3). Translation goes
  // through the CPU's TLB and the space's page tables; a missing mapping
  // raises the normal fault-forwarding path synchronously and the access
  // retries. No call-gate cost: this is not a kernel call.
  Result<uint32_t> GuestLoad(KernelId caller, cksim::Cpu& cpu, ThreadId thread,
                             cksim::VirtAddr vaddr);
  CkStatus GuestStore(KernelId caller, cksim::Cpu& cpu, ThreadId thread, cksim::VirtAddr vaddr,
                      uint32_t value);

  // ---- failure injection ----
  // Mark a physical frame as held remotely / failed: accesses raise
  // consistency faults (section 2.1 footnote 1).
  void MarkFrameRemote(uint32_t pframe, bool remote);

  // ---- app-kernel deferred events ----
  // Models application kernels' internal timer/pager threads: run `fn` with
  // the kernel's authority at simulated time `at` on whichever CPU reaches
  // it first.
  void ScheduleAppEvent(cksim::Cycles at, KernelId kernel,
                        std::function<void(CkApi&)> fn);

  // ---- MachineClient / SignalSink ----
  void OnCpuTurn(cksim::Cpu& cpu) override;
  void SignalPhysical(cksim::PhysAddr addr, cksim::Cycles when) override;

  // ---- introspection (tests, benches, examples) ----
  const CkStats& stats() const { return stats_; }
  const FaultTrace& last_fault_trace() const { return fault_trace_; }
  // Last-N completed fault traces, oldest first (N = config.fault_history_depth).
  std::vector<FaultTrace> FaultHistory() const;
  uint64_t fault_traces_recorded() const { return fault_history_pushed_; }
  const FaultStepStats& fault_step_stats() const { return fault_step_stats_; }
  // Register every counter and latency histogram this kernel (and its
  // machine's TLBs) maintains under stable dotted names.
  void RegisterMetrics(obs::Registry& registry);
  cksim::Machine& machine() { return machine_; }
  const CacheKernelConfig& config() const { return config_; }
  const RuntimeKnobs& knobs() const { return knobs_; }
  // Toggle the guest-execution fast path at runtime (tests/benches). Safe at
  // any point: the flag is consulted once per dispatched guest quantum.
  void set_fastpath(bool enabled) { knobs_.fastpath = enabled; }
  // Toggle superblock trace execution (fast-path-only; see RuntimeKnobs).
  void set_trace_exec(bool enabled) { knobs_.trace_exec = enabled; }
  // Toggle the intra-MPM batch dispatch protocol and set the host worker
  // thread count for its execution phase. Both consulted once per turn.
  void set_cpus_parallel(bool enabled) { knobs_.cpus_parallel = enabled; }
  void set_cpu_host_threads(uint32_t threads);
  // Set the profiler sampling period (cycles between guest-PC samples);
  // 0 disables. Takes effect at the next dispatched guest quantum.
  void set_profile_period(cksim::Cycles period);
  // Per-kernel-slot cost attribution (always on; see CostAccount).
  const std::vector<CostAccount>& tenant_accounts() const { return tenant_; }
  // Attribute file-service client cache work (hits/misses/read-ahead/
  // invalidations) to `kernel`'s cost account. The fs layer lives in
  // application kernels (src/fs); this is its one hook into the always-on
  // attribution machinery, mirrored by the ck.fs.* and ck.tenant.<slot>.fs_*
  // metrics. Out-of-range slots are ignored.
  void ChargeFs(KernelId kernel, FsCounter counter, uint64_t count = 1);
  // Profiler PC histograms: profile_pcs()[slot] maps guest PC -> sample
  // count for the kernel that held `slot` when the samples were taken.
  const std::vector<std::map<uint32_t, uint64_t>>& profile_pcs() const { return profile_pcs_; }
  uint64_t profile_samples_total() const { return profile_samples_total_; }
  // Invoked when a forwarded fault terminates its thread (the owning kernel
  // declined to handle it) -- the flight-recorder trigger. The argument is a
  // short reason string.
  void set_fatal_hook(std::function<void(const std::string&)> hook) {
    fatal_hook_ = std::move(hook);
  }
  // Switch a descriptor cache's replacement policy at runtime. Consulted
  // once per reclamation, so this is safe at any point; the soft referenced
  // bits and load stamps are maintained continuously under every policy.
  void set_replacement_policy(ObjectType type, ReplacementPolicy policy) {
    knobs_.replacement[static_cast<uint32_t>(type)] = policy;
  }
  // ---- tiered physical memory (docs/TIERING.md) ----
  // Set the DRAM budget (frames; 0 disables tiering) and the pressure mode
  // (demote-to-slow vs full evict). Safe at any point: consulted at the next
  // admission / maintenance scan. Frames touched before enabling stay
  // untracked (DRAM-like) until their next mapping load or pool allocation.
  void set_tiers(uint32_t dram_frames, bool demote) {
    knobs_.tier_dram_frames = dram_frames;
    knobs_.tier_demote = demote;
  }
  void set_tier_promote_period(cksim::Cycles period) { knobs_.tier_promote_period = period; }
  // Recency touch for a frame an application kernel holds outside any
  // mapping (file-cache pages, src/fs): gives it the same second chance a
  // hardware referenced bit gives a mapped frame.
  void TierTouch(cksim::PhysAddr addr);
  // Frame-pool allocation/release hook (src/appkernel/frame_pool.h, bound by
  // the SRM at Launch): tracks pool-held frames in the DRAM tier so they
  // participate in demotion instead of pinning DRAM.
  void TierFramePoolEvent(KernelId owner, cksim::PhysAddr frame, bool allocated);
  // Checkpoint/restore (src/ckpt): read / reinstate one frame's tier
  // placement. Restore routes through the normal transition accounting, so
  // the tier conservation identities keep holding.
  uint8_t FrameTierOf(cksim::PhysAddr addr) const;
  void RestoreFrameTier(cksim::PhysAddr addr, uint8_t tier);

  uint32_t loaded_count(ObjectType type) const;
  uint32_t capacity(ObjectType type) const;
  // Writeback enumeration for the checkpoint subsystem: how many loaded
  // objects of each type `kernel` currently owns (the population the
  // dependency-ordered unloader will write back on quiesce; all-zero
  // afterwards -- the quiescence assertion). A stale/unloaded kernel id
  // reports zero everywhere: nothing references it, so nothing is loaded.
  std::array<uint32_t, kObjectTypeCount> LoadedCountsFor(KernelId kernel);

  // Thread/space state peeking for tests.
  bool IsThreadLoaded(ThreadId id) { return threads_.Lookup(id.id) != nullptr; }
  bool IsSpaceLoaded(SpaceId id) { return spaces_.Lookup(id.id) != nullptr; }
  bool IsKernelLoaded(KernelId id) { return kernels_.Lookup(id.id) != nullptr; }
  Result<ThreadState> GetThreadState(ThreadId id);
  Result<ckisa::VmContext> GetThreadContext(ThreadId id);
  // Live CPU consumption of a loaded thread (the per-thread accounting the
  // quota machinery maintains, section 4.3). App-kernel scheduler threads use
  // it to detect compute-bound threads.
  Result<cksim::Cycles> GetThreadCpuConsumed(ThreadId id);
  // Processor the thread was placed on at load time.
  Result<uint32_t> GetThreadCpu(ThreadId id);

  // Exhaustive structural self-check (the property tests' oracle): verifies
  // the Figure 6 dependency invariants -- every loaded object's dependencies
  // are loaded, the physical memory map agrees with the page tables, queue
  // membership matches thread states, per-kernel counts add up. Returns a
  // list of violations (empty = consistent).
  std::vector<std::string> ValidateInvariants();

  // Descriptor sizes for the Table 1 bench.
  static constexpr uint32_t kKernelObjectBytes = sizeof(KernelObject);
  static constexpr uint32_t kSpaceObjectBytes = sizeof(AddressSpaceObject);
  static constexpr uint32_t kThreadObjectBytes = sizeof(ThreadObject);
  static constexpr uint32_t kMappingEntryBytes = sizeof(MemMapEntry);

 private:
  friend class CkApi;
  friend class GuestBusImpl;
  friend class NativeCtx;

  struct PendingSignal {
    ckbase::PoolId thread;
    cksim::VirtAddr vaddr = 0;
    uint32_t pframe = 0;  // for the receiver-side reverse-TLB fast path
    cksim::Cycles due = 0;
  };

  struct AppEvent {
    cksim::Cycles at = 0;
    ckbase::PoolId kernel;
    std::function<void(CkApi&)> fn;
  };

  // -- tracing --
  // The emitting CPU's trace ring; nullptr until Machine::EnableTracing.
  obs::TraceRing* Ring(cksim::Cpu& cpu) { return machine_.trace_ring(cpu.id()); }
  // Fold a completed fault trace into the history ring and step histograms.
  void RecordFaultTrace(const FaultTrace& trace);

  // -- lookup helpers --
  KernelObject* GetKernel(KernelId id) { return kernels_.Lookup(id.id); }
  AddressSpaceObject* GetSpace(SpaceId id) { return spaces_.Lookup(id.id); }
  ThreadObject* GetThread(ThreadId id) { return threads_.Lookup(id.id); }
  KernelId IdOfKernel(const KernelObject* k) { return KernelId{kernels_.IdOf(k)}; }
  SpaceId IdOfSpace(const AddressSpaceObject* s) { return SpaceId{spaces_.IdOf(s)}; }
  ThreadId IdOfThread(const ThreadObject* t) { return ThreadId{threads_.IdOf(t)}; }
  KernelObject* KernelOfSlot(uint32_t slot) { return kernels_.SlotAt(slot); }

  // -- effective lock chains (section 4.2) --
  bool KernelEffectivelyLocked(const KernelObject* k) const { return k->locked; }
  bool SpaceEffectivelyLocked(AddressSpaceObject* s);
  bool ThreadEffectivelyLocked(ThreadObject* t);
  bool MappingEffectivelyLocked(uint32_t pv_index);

  // -- reclamation (capacity-forced victims) --
  // One generic engine (src/ck/object_cache.h) driven by per-type Ops glue;
  // the policy comes from knobs_.replacement[type].
  struct KernelVictimOps;
  struct SpaceVictimOps;
  struct ThreadVictimOps;
  struct MappingVictimOps;
  // `requester_slot` is the kernel slot whose load forced the scan; the scan
  // steps are charged to its cost account.
  bool ReclaimVictim(ObjectType type, cksim::Cpu& cpu, uint32_t requester_slot);

  // -- cascaded unload (Figure 6 order). Writeback unless kDiscard; the
  // cause picks the stat counter. Dependents are unloaded with kCascade
  // (kDiscard propagates). --
  void UnloadKernelInternal(KernelObject* kernel, cksim::Cpu& cpu, UnloadCause cause);
  void UnloadSpaceInternal(AddressSpaceObject* space, cksim::Cpu& cpu, UnloadCause cause);
  void UnloadThreadInternal(ThreadObject* thread, cksim::Cpu& cpu, UnloadCause cause);
  void UnloadPvRecord(uint32_t pv_index, cksim::Cpu& cpu, UnloadCause cause,
                      bool consistency_cascade = true);

  // -- frame-sharing accounting (AddressSpaceObject::shared_frame_refs /
  // message_maps, the O(1) intra-MPM batch eligibility check). Called with
  // the pv record inserted / still present. --
  void NoteSharedFrameInsert(uint32_t pv_index);
  void NoteSharedFrameRemove(uint32_t pv_index);

  // -- page table maintenance --
  // Returns the leaf PTE address for vaddr, allocating tables if `create`.
  cksim::PhysAddr LeafPteAddr(AddressSpaceObject* space, cksim::VirtAddr vaddr, bool create,
                              cksim::Cpu& cpu);
  void FreeSpaceTables(AddressSpaceObject* space);

  // -- scheduling --
  ThreadObject* PickNext(cksim::Cpu& cpu);
  void Enqueue(ThreadObject* thread, bool front = false);
  void Dequeue(ThreadObject* thread);
  void RunGuest(ThreadObject* thread, cksim::Cpu& cpu);
  void RunNative(ThreadObject* thread, cksim::Cpu& cpu);
  // -- intra-MPM batch dispatch (ck_sched.cc) --
  // One CPU's prepared guest quantum: everything the execution phase needs,
  // plus the staged counters the commit phase folds. Defined in ck_sched.cc
  // (it references GuestBusImpl state).
  struct GuestRunJob;
  enum class TurnPrep : uint8_t { kIdle, kGuestJob, kInline };
  void SerialTurn(cksim::Cpu& cpu);
  void BatchTurn(cksim::Cpu& first);
  TurnPrep PrepareTurn(cksim::Cpu& cpu, GuestRunJob* job);
  bool GuestJobStillValid(const GuestRunJob& job);
  void RunBatchJob(GuestRunJob& job);
  void CommitGuestRun(GuestRunJob& job);
  void FinishTurn(cksim::Cpu& cpu);
  void RunJobsOnWorkers(GuestRunJob* jobs, const bool* valid, uint32_t count);
  void StartCpuWorkers(uint32_t count);
  void StopCpuWorkers();
  void CpuWorkerMain();
  void ChargeThread(ThreadObject* thread, cksim::Cpu& cpu, cksim::Cycles cycles);
  void RollQuotaWindow(cksim::Cpu& cpu);
  void PreemptCurrent(cksim::Cpu& cpu);
  ThreadObject* CurrentOn(cksim::Cpu& cpu) {
    return static_cast<ThreadObject*>(cpu.current_thread);
  }

  // -- forwarding --
  void ForwardFault(ThreadObject* thread, cksim::Cpu& cpu, const cksim::Fault& fault);
  void ForwardTrap(ThreadObject* thread, cksim::Cpu& cpu, uint16_t number);
  void HandleCkTrap(ThreadObject* thread, cksim::Cpu& cpu, uint16_t number);

  // -- messaging internals --
  void DeliverSignalToFrame(uint32_t pframe, uint32_t offset, cksim::Cycles when,
                            cksim::Cpu* origin_cpu);
  void DeliverToThread(ThreadObject* thread, cksim::VirtAddr vaddr, uint32_t pframe,
                       cksim::Cpu& cpu);
  void DrainPendingSignals(cksim::Cpu& cpu);
  void MaybeEnterSignalHandler(ThreadObject* thread, cksim::Cpu& cpu);
  void RemoveSignalRecordsForThread(ThreadObject* thread, cksim::Cpu& cpu);
  // Unlink a signal record from its thread's registration chain (and drop
  // the thread's count) before the record is removed for a reason other than
  // thread teardown (mapping unload). Stale records naming a previous slot
  // occupant are left alone.
  void UnlinkSignalRecord(uint32_t index);

  // -- access checks --
  bool CheckPhysicalAccess(KernelObject* kernel, cksim::PhysAddr addr, uint32_t len, bool write);

  // O(1) remote-frame probe on the guest memory hot paths (dense region of
  // the bitmap; frames beyond local memory fall back to its sparse side).
  bool FrameIsRemote(uint32_t pframe) const { return remote_frames_.Test(pframe); }

  // -- tiered physical memory (docs/TIERING.md) --
  bool TierEnabled() const { return knobs_.tier_dram_frames != 0; }
  // Why a tier transition happened; picks the stat counters. Restore reuses
  // kAdmit/kDemote so the conservation identities hold across round trips.
  enum class TierChange : uint8_t { kAdmit, kDemote, kPromote, kEvict, kRelease };
  // The single tier-transition point: maintains the PhysicalMemory tier
  // attribute, the frame cache's load stamps and every CkStats/CostAccount
  // tier counter. All callers run at deterministic serial points.
  void SetFrameTierInternal(uint32_t frame, cksim::MemTier to, TierChange why,
                            uint32_t tenant_slot);
  // Admit an untracked frame to DRAM (or refresh a tracked frame's recency),
  // demoting/evicting one cold victim first when at budget. cpu may be null
  // (frame-pool hook); charges and traces are skipped then and the budget is
  // enforced by the next maintenance scan instead.
  void TierAdmitFrame(uint32_t frame, cksim::Cpu* cpu, uint32_t requester_slot);
  // Demote (or fully evict, per knobs_.tier_demote) one cold DRAM frame.
  // False when every candidate is pinned. `exclude` (kNoFrame when unused)
  // protects the frame currently being admitted or promoted.
  bool TierReclaimOne(cksim::Cpu& cpu, uint32_t requester_slot, uint32_t exclude);
  // Serial maintenance pass (head of turn preparation, both dispatch modes):
  // trim over-budget DRAM, then promote hot slow-tier frames by their
  // harvested referenced bits.
  void TierMaintenance(cksim::Cpu& cpu);
  // Harvest (and clear) the referenced evidence for a frame: hardware leaf
  // PTE bits over all of its virtual mappings, OR-ed with the soft TierTouch
  // bit. PTE reads/clears are charged to `cpu`.
  bool TierTestAndClearReferenced(uint32_t frame, cksim::Cpu& cpu);
  // Any virtual mapping of the frame effectively locked (those pin DRAM)?
  bool TierFramePinned(uint32_t frame);
  // Flush every TLB / reverse-TLB entry naming the frame so post-transition
  // accesses re-fill and pay the new tier's fill cost.
  void TierFlushFrame(uint32_t frame, cksim::Cpu& cpu);
  // Owning tenant: kernel slot of the first virtual mapping's space, or
  // `fallback` for frames with no mappings (pool-held file-cache pages).
  uint32_t TierOwnerSlot(uint32_t frame, uint32_t fallback);
  // Extra cycles for bulk physical access overlapping slow-tier frames.
  cksim::Cycles TierSlowTouchCycles(cksim::PhysAddr addr, uint32_t len) const;
  struct FrameTierOps;
  static constexpr uint32_t kNoFrame = 0xffffffffu;

  void FlushTlbPageAllCpus(uint16_t asid, uint32_t vpage, cksim::Cpu& cpu);
  void FlushReverseTlbFrameAllCpus(uint32_t pframe);

  cksim::Machine& machine_;
  const CacheKernelConfig config_;
  RuntimeKnobs knobs_;

  // The four descriptor caches: one ObjectCache layer over the per-type
  // stores (the mapping instance wraps the physical memory map).
  ObjectCache<ckbase::FixedPool<KernelObject>> kernels_;
  ObjectCache<ckbase::FixedPool<AddressSpaceObject>> spaces_;
  ObjectCache<ckbase::FixedPool<ThreadObject>> threads_;
  ObjectCache<PhysicalMemoryMap> pmap_;
  TableArena table_arena_;
  // Frame-tier recency cache: load stamps / soft bits / clock hand over
  // physical frames (one slot per frame; "loaded" == tier-tracked). The
  // demotion victim scan runs the same pluggable Reclaim engine as the four
  // descriptor caches, under the mapping type's replacement policy.
  ObjectCache<FrameTierStore> frame_tiers_;
  std::vector<uint8_t> tier_ref_;   // soft referenced bit per frame (TierTouch)
  uint32_t tier_promote_hand_ = 0;  // round-robin start of the promotion scan
  cksim::Cycles tier_next_scan_ = 0;

  KernelId first_kernel_;

  // Per-CPU, per-priority ready queues.
  using ReadyQueue = ckbase::IntrusiveList<ThreadObject, &ThreadObject::ready_node>;
  std::vector<std::vector<ReadyQueue>> ready_;  // [cpu][priority]
  // Bit p set iff ready_[cpu][p] is non-empty (maintained by Enqueue/Dequeue,
  // the only two mutation points). Lets the per-turn priority-preemption check
  // and PickNext's scan test one word instead of walking every queue head.
  // Caps priority_levels at 64.
  std::vector<uint64_t> ready_mask_;  // [cpu]

  std::vector<std::deque<PendingSignal>> pending_signals_;  // [cpu]
  std::vector<cksim::Cycles> quota_window_start_;           // [cpu]

  // Head of each thread slot's signal-registration chain (records linked
  // through MemMapEntry::signal_next). Kept beside the pool rather than in
  // ThreadObject so the descriptor keeps its Table 1 shape.
  std::vector<uint32_t> signal_reg_head_;  // [thread slot]

  std::vector<AppEvent> app_events_;  // kept sorted by `at`
  // Frames held on remote nodes / failed modules: single source of truth.
  // The dense region doubles as the O(1) per-access probe the guest memory
  // paths and the fast-path interpreter use (raw pointer capture).
  ckbase::IterableBitmap remote_frames_;

  // Guest-execution fast path state (src/isa/fastpath.h): one micro-TLB per
  // CPU (mirrors the per-CPU hardware TLB) and one decoded-instruction cache
  // per machine (keyed by physical frame, like the memory it shadows).
  std::vector<ckisa::MicroTlb> micro_tlbs_;
  std::unique_ptr<ckisa::ExecCache> exec_cache_;
  // Per-CPU superblock trace caches (per-CPU so the batch execution phase
  // shares no trace state across host threads).
  std::vector<std::unique_ptr<ckisa::TraceCache>> trace_caches_;

  // -- intra-MPM worker pool (generation-counted barrier, same shape as
  // cksim::Cluster's). Jobs are published under batch_mu_; pickup races on
  // batch_next_; each worker writes only the jobs it claimed. --
  std::vector<std::thread> cpu_workers_;
  std::mutex batch_mu_;
  std::condition_variable batch_start_cv_;
  std::condition_variable batch_done_cv_;
  uint64_t batch_generation_ = 0;
  uint32_t batch_unfinished_ = 0;
  bool batch_shutdown_ = false;
  GuestRunJob* batch_jobs_ = nullptr;
  const bool* batch_valid_ = nullptr;
  uint32_t batch_job_count_ = 0;
  std::atomic<uint32_t> batch_next_{0};

  // -- cost attribution / profiler --
  CostAccount& Tenant(uint32_t slot) { return tenant_[slot]; }
  // Harvest a pending profiler sample into the owning kernel's histogram.
  void RecordPcSample(uint32_t kernel_slot, uint32_t pc, cksim::Cpu& cpu);

  uint32_t next_cpu_rr_ = 0;  // round-robin thread placement
  CkStats stats_;
  std::vector<CostAccount> tenant_;                       // [kernel slot]
  std::vector<std::map<uint32_t, uint64_t>> profile_pcs_; // [kernel slot] pc -> samples
  std::vector<ckisa::PcSampler> samplers_;                // [cpu]
  uint64_t profile_samples_total_ = 0;
  std::function<void(const std::string&)> fatal_hook_;
  FaultTrace fault_trace_;
  // Last-N completed traces (overwrite-oldest) plus per-step distributions.
  std::vector<FaultTrace> fault_history_;
  uint64_t fault_history_pushed_ = 0;
  FaultStepStats fault_step_stats_;
};

// Facade carrying one application kernel's authority into Cache Kernel calls
// (the "trap into the Cache Kernel" path for native app-kernel code). Also
// lets app kernels charge their own simulated user-mode work.
class CkApi {
 public:
  CkApi(CacheKernel& kernel, KernelId self, cksim::Cpu& cpu)
      : ck_(kernel), self_(self), cpu_(cpu) {}

  KernelId self() const { return self_; }
  cksim::Cpu& cpu() { return cpu_; }
  CacheKernel& kernel() { return ck_; }
  cksim::Cycles now() const { return cpu_.clock(); }
  void Charge(cksim::Cycles cycles) { cpu_.Advance(cycles); }

  Result<SpaceId> LoadSpace(uint64_t cookie, bool locked = false) {
    return ck_.LoadSpace(self_, cpu_, cookie, locked);
  }
  CkStatus UnloadSpace(SpaceId space) { return ck_.UnloadSpace(self_, cpu_, space); }
  Result<ThreadId> LoadThread(const ThreadSpec& spec) { return ck_.LoadThread(self_, cpu_, spec); }
  CkStatus UnloadThread(ThreadId thread) { return ck_.UnloadThread(self_, cpu_, thread); }
  CkStatus SetThreadPriority(ThreadId thread, uint8_t priority) {
    return ck_.SetThreadPriority(self_, cpu_, thread, priority);
  }
  CkStatus BlockThread(ThreadId thread) { return ck_.BlockThread(self_, cpu_, thread); }
  CkStatus ResumeThread(ThreadId thread, bool has_return = false, uint32_t return_value = 0) {
    return ck_.ResumeThread(self_, cpu_, thread, has_return, return_value);
  }
  CkStatus RedirectThread(ThreadId thread, cksim::VirtAddr pc, uint32_t a0) {
    return ck_.RedirectThread(self_, cpu_, thread, pc, a0);
  }
  CkStatus LoadMapping(const MappingSpec& spec) { return ck_.LoadMapping(self_, cpu_, spec); }
  CkStatus LoadMappingAndResume(const MappingSpec& spec, ThreadId faulting) {
    return ck_.LoadMappingAndResume(self_, cpu_, spec, faulting);
  }
  CkStatus UnloadMapping(SpaceId space, cksim::VirtAddr vaddr) {
    return ck_.UnloadMapping(self_, cpu_, space, vaddr);
  }
  CkStatus UnloadMappingRange(SpaceId space, cksim::VirtAddr vaddr, uint32_t pages) {
    return ck_.UnloadMappingRange(self_, cpu_, space, vaddr, pages);
  }
  Result<MappingInfo> QueryMapping(SpaceId space, cksim::VirtAddr vaddr) {
    return ck_.QueryMapping(self_, cpu_, space, vaddr);
  }
  CkStatus LockMapping(SpaceId space, cksim::VirtAddr vaddr, bool locked) {
    return ck_.LockMapping(self_, cpu_, space, vaddr, locked);
  }
  CkStatus Signal(SpaceId sender_space, cksim::VirtAddr vaddr) {
    return ck_.Signal(self_, cpu_, sender_space, vaddr);
  }
  CkStatus CopyPage(cksim::PhysAddr dst, cksim::PhysAddr src) {
    return ck_.CopyPage(self_, cpu_, dst, src);
  }
  CkStatus ZeroPage(cksim::PhysAddr dst) { return ck_.ZeroPage(self_, cpu_, dst); }
  CkStatus WritePhys(cksim::PhysAddr addr, const void* data, uint32_t len) {
    return ck_.WritePhys(self_, cpu_, addr, data, len);
  }
  CkStatus ReadPhys(cksim::PhysAddr addr, void* out, uint32_t len) {
    return ck_.ReadPhys(self_, cpu_, addr, out, len);
  }
  // Tiered physical memory (docs/TIERING.md): recency touch for pool-held
  // frames, and tier capture/reinstate for checkpoint/restore.
  void TierTouch(cksim::PhysAddr addr) { ck_.TierTouch(addr); }
  uint8_t FrameTier(cksim::PhysAddr addr) const { return ck_.FrameTierOf(addr); }
  void SetFrameTier(cksim::PhysAddr addr, uint8_t tier) { ck_.RestoreFrameTier(addr, tier); }
  void ScheduleAt(cksim::Cycles at, std::function<void(CkApi&)> fn) {
    ck_.ScheduleAppEvent(at, self_, std::move(fn));
  }
  void ScheduleAfter(cksim::Cycles delay, std::function<void(CkApi&)> fn) {
    ck_.ScheduleAppEvent(cpu_.clock() + delay, self_, std::move(fn));
  }

  // First-kernel (SRM) operations; kDenied for everyone else.
  Result<KernelId> LoadKernel(AppKernel* handlers, uint64_t cookie, bool locked = false) {
    return ck_.LoadKernel(self_, cpu_, handlers, cookie, locked);
  }
  CkStatus UnloadKernel(KernelId kernel) { return ck_.UnloadKernel(self_, cpu_, kernel); }
  CkStatus GrantPageGroups(KernelId kernel, uint32_t first_group, uint32_t count,
                           GroupAccess access) {
    return ck_.GrantPageGroups(self_, cpu_, kernel, first_group, count, access);
  }
  CkStatus SetCpuQuota(KernelId kernel, const uint8_t percent[kMaxCpus], uint8_t max_priority) {
    return ck_.SetCpuQuota(self_, cpu_, kernel, percent, max_priority);
  }
  CkStatus SetLockLimits(KernelId kernel, const uint8_t limits[kObjectTypeCount]) {
    return ck_.SetLockLimits(self_, cpu_, kernel, limits);
  }

 private:
  CacheKernel& ck_;
  KernelId self_;
  cksim::Cpu& cpu_;
};

// Execution context given to native programs each Step/OnSignal.
class NativeCtx {
 public:
  NativeCtx(CkApi api, ThreadId self, uint64_t cookie)
      : api_(api), self_(self), cookie_(cookie) {}

  CkApi& api() { return api_; }
  ThreadId self_thread() const { return self_; }
  uint64_t cookie() const { return cookie_; }
  void Charge(cksim::Cycles cycles) { api_.Charge(cycles); }

  // Memory access through this thread's address space (translated, charged,
  // faulting into the owning kernel's handler like any other access).
  ckbase::Result<uint32_t> LoadWord(cksim::VirtAddr vaddr) {
    return api_.kernel().GuestLoad(api_.self(), api_.cpu(), self_, vaddr);
  }
  ckbase::CkStatus StoreWord(cksim::VirtAddr vaddr, uint32_t value) {
    return api_.kernel().GuestStore(api_.self(), api_.cpu(), self_, vaddr, value);
  }

 private:
  CkApi api_;
  ThreadId self_;
  uint64_t cookie_;
};

// Guest trap numbers handled by the Cache Kernel itself; all others are
// forwarded to the owning application kernel as system calls.
inline constexpr uint16_t kTrapSignalReturn = 1;  // end of signal function
inline constexpr uint16_t kTrapSignal = 2;        // a0 = message vaddr
inline constexpr uint16_t kTrapAwaitSignal = 3;   // block until a signal
inline constexpr uint16_t kTrapYield = 4;         // give up the time slice
inline constexpr uint16_t kFirstAppTrap = 16;     // app-kernel syscall space

}  // namespace ck

#endif  // SRC_CK_CACHE_KERNEL_H_

#include "src/ck/table_arena.h"

namespace ck {

TableArena::TableArena(cksim::PhysicalMemory& memory, cksim::PhysAddr base, uint32_t size)
    : memory_(memory), bump_(base), end_(base + size) {
  blocks_total_ = size / kBlock;
  blocks_free_ = blocks_total_;
}

cksim::PhysAddr TableArena::Allocate(uint32_t bytes) {
  cksim::PhysAddr result = 0;
  if (bytes == 512) {
    if (free512_ != 0) {
      result = free512_;
      free512_ = memory_.ReadWord(result);
    } else if (bump_ + 512 <= end_) {
      result = bump_;
      bump_ += 512;
    }
    if (result != 0) {
      blocks_free_ -= 2;
    }
  } else if (bytes == 256) {
    if (free256_ != 0) {
      result = free256_;
      free256_ = memory_.ReadWord(result);
    } else if (bump_ + 256 <= end_) {
      result = bump_;
      bump_ += 256;
    }
    if (result != 0) {
      blocks_free_ -= 1;
    }
  }
  if (result != 0) {
    memory_.Zero(result, bytes);
  }
  return result;
}

void TableArena::Free(cksim::PhysAddr table, uint32_t bytes) {
  if (table == 0) {
    return;
  }
  if (bytes == 512) {
    memory_.WriteWord(table, free512_);
    free512_ = table;
    blocks_free_ += 2;
  } else if (bytes == 256) {
    memory_.WriteWord(table, free256_);
    free256_ = table;
    blocks_free_ += 1;
  }
}

}  // namespace ck

// Memory-based messaging: address-valued signal delivery (sections 2.2, 4.1).

#include "src/ck/cache_kernel.h"

namespace ck {

using cksim::Cycles;
using cksim::PhysAddr;
using cksim::VirtAddr;

CkStatus CacheKernel::Signal(KernelId caller, cksim::Cpu& cpu, SpaceId sender_space,
                             VirtAddr vaddr) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  CkStatus status = [&] {
    KernelObject* owner = GetKernel(caller);
    AddressSpaceObject* space = GetSpace(sender_space);
    if (owner == nullptr || space == nullptr) {
      stats_.stale_id_errors++;
      return CkStatus::kStale;
    }
    if (kernels_.SlotAt(space->kernel_slot) != owner) {
      return CkStatus::kDenied;
    }
    uint16_t asid = static_cast<uint16_t>(spaces_.SlotOf(space));
    cksim::Mmu::TranslateResult t =
        cpu.mmu().Translate(space->root_table, asid, vaddr, cksim::Access::kRead);
    cpu.Advance(t.cycles);
    if (!t.ok) {
      return CkStatus::kNotFound;  // sender's mapping must be loaded
    }
    PhysAddr leaf = LeafPteAddr(space, vaddr, /*create=*/false, cpu);
    uint32_t pte = leaf != 0 ? machine_.memory().ReadWord(leaf) : 0;
    if (!cksim::PteValid(pte) || (pte & cksim::kPteMessage) == 0) {
      return CkStatus::kInvalidArgument;  // not a message-mode page
    }
    machine_.DeliverDoorbell(t.paddr, cpu.clock());
    DeliverSignalToFrame(cksim::PageFrame(t.paddr), t.paddr & cksim::kPageOffsetMask, cpu.clock(),
                         &cpu);
    return CkStatus::kOk;
  }();
  cpu.Advance(cost.trap_exit);
  return status;
}

void CacheKernel::SignalPhysical(PhysAddr addr, Cycles when) {
  // Device-originated signals (reception slots, clock ticks). Devices run off
  // the machine clock, not a CPU, so delivery always goes through the
  // per-CPU pending queues.
  DeliverSignalToFrame(cksim::PageFrame(addr), addr & cksim::kPageOffsetMask, when, nullptr);
}

void CacheKernel::DeliverSignalToFrame(uint32_t pframe, uint32_t offset, Cycles when,
                                       cksim::Cpu* origin_cpu) {
  const cksim::CostModel& cost = machine_.cost();

  // Two-stage lookup (section 4.1): PhysToVirt records for the frame, then
  // Signal records keyed by each. Targets are collected first because
  // delivery can mutate the map (stale-thread records are dropped).
  struct Target {
    ckbase::PoolId thread;
    VirtAddr vaddr;
  };
  std::vector<Target> targets;

  for (uint32_t pv = pmap_.FindFirst(pframe); pv != kNilRecord; pv = pmap_.NextWithKey(pv)) {
    const MemMapEntry& rec = pmap_.record(pv);
    if (rec.type() != RecordType::kPhysToVirt) {
      continue;
    }
    VirtAddr vbase = rec.pv_vaddr();
    for (uint32_t sig = pmap_.FindFirst(pv); sig != kNilRecord; sig = pmap_.NextWithKey(sig)) {
      const MemMapEntry& dep = pmap_.record(sig);
      if (dep.type() != RecordType::kSignal) {
        continue;
      }
      uint32_t slot = dep.signal_thread_slot();
      if (!threads_.IsAllocated(slot)) {
        continue;
      }
      ThreadObject* t = threads_.SlotAt(slot);
      ckbase::PoolId tid = threads_.IdOf(t);
      if ((tid.generation & 0xffffffu) != dep.signal_thread_gen24()) {
        continue;  // record names a previous occupant of the slot
      }
      targets.push_back(Target{tid, vbase + offset});
    }
  }

  for (const Target& target : targets) {
    ThreadObject* t = threads_.Lookup(target.thread);
    if (t == nullptr) {
      continue;
    }
    if (origin_cpu != nullptr && t->cpu == origin_cpu->id()) {
      DeliverToThread(t, target.vaddr, pframe, *origin_cpu);
    } else {
      // Cross-processor delivery: timestamped, processed on the receiver's
      // next turn after the IPI latency.
      if (origin_cpu != nullptr) {
        origin_cpu->Advance(cost.ipi);
      }
      Cycles due = when + cost.ipi;
      auto& queue = pending_signals_[t->cpu];
      auto it = queue.end();
      while (it != queue.begin() && (it - 1)->due > due) {
        --it;
      }
      queue.insert(it, PendingSignal{target.thread, target.vaddr, pframe, due});
    }
  }
}

void CacheKernel::DrainPendingSignals(cksim::Cpu& cpu) {
  auto& queue = pending_signals_[cpu.id()];
  while (!queue.empty() && queue.front().due <= cpu.clock()) {
    PendingSignal pending = queue.front();
    queue.pop_front();
    ThreadObject* t = threads_.Lookup(pending.thread);
    if (t == nullptr) {
      continue;  // unloaded while the signal was in flight
    }
    DeliverToThread(t, pending.vaddr, pending.pframe, cpu);
  }
}

void CacheKernel::DeliverToThread(ThreadObject* thread, VirtAddr vaddr, uint32_t pframe,
                                  cksim::Cpu& cpu) {
  const cksim::CostModel& cost = machine_.cost();
  // Signal delivery marks the receiver recently used (second-chance policy).
  threads_.Touch(threads_.SlotOf(thread));

  // Fast path: the per-processor reverse-TLB maps the physical frame to the
  // (virtual address, signal function) pair; a hit delivers to the active
  // thread with no map lookup (section 4.1).
  bool fast = false;
  if (config_.reverse_tlb_enabled) {
    const cksim::ReverseTlb::Entry* entry = cpu.reverse_tlb().Lookup(pframe);
    if (entry != nullptr && entry->thread_id == threads_.IdOf(thread).Packed()) {
      fast = true;
    }
  }
  if (fast) {
    cpu.Advance(cost.signal_deliver_fast);
    stats_.signals_delivered_fast++;
    CK_TRACE(Ring(cpu), obs::EventType::kSignalFast, cpu.clock(), pframe, vaddr);
  } else {
    cpu.Advance(cost.signal_deliver_slow);
    stats_.signals_delivered_slow++;
    CK_TRACE(Ring(cpu), obs::EventType::kSignalSlow, cpu.clock(), pframe, vaddr);
    if (config_.reverse_tlb_enabled) {
      cksim::ReverseTlb::Entry entry;
      entry.valid = true;
      entry.pframe = pframe;
      entry.vbase = vaddr & ~cksim::kPageOffsetMask;
      entry.thread_id = threads_.IdOf(thread).Packed();
      entry.handler = thread->signal_handler;
      entry.map_version = pmap_.version_value();
      cpu.reverse_tlb().Insert(entry);
    }
  }

  // Queue the address-valued signal.
  if (thread->signal_count >= ThreadObject::kSignalQueueDepth) {
    thread->signals_dropped++;
    stats_.signals_dropped++;
    CK_TRACE(Ring(cpu), obs::EventType::kSignalDropped, cpu.clock(),
             threads_.IdOf(thread).Packed(), vaddr);
    return;
  }
  uint32_t tail =
      (thread->signal_head + thread->signal_count) % ThreadObject::kSignalQueueDepth;
  thread->signal_queue[tail] = vaddr;
  thread->signal_count++;
  if (thread->in_signal) {
    stats_.signals_queued++;
    CK_TRACE(Ring(cpu), obs::EventType::kSignalQueued, cpu.clock(),
             threads_.IdOf(thread).Packed(), vaddr);
  }

  switch (thread->state) {
    case ThreadState::kBlocked: {
      // Wake the waiter; "the overhead of signal delivery to the non-active
      // thread ... is dominated by the rescheduling time".
      thread->state = ThreadState::kReady;
      if (thread->native == nullptr && thread->signal_handler == 0) {
        // await-signal style: return the address in a0.
        VirtAddr addr = thread->signal_queue[thread->signal_head];
        thread->signal_head = (thread->signal_head + 1) % ThreadObject::kSignalQueueDepth;
        thread->signal_count--;
        thread->signals_taken++;
        thread->vm.regs[ckisa::kRegA0] = addr;
      }
      Enqueue(thread, /*front=*/true);
      cpu.Advance(cost.list_op);
      break;
    }
    case ThreadState::kRunning:
      // Guest threads enter the signal function at their next instruction
      // boundary (the dispatcher calls MaybeEnterSignalHandler); native
      // threads get OnSignal before their next Step.
      if (CurrentOn(cpu) == thread && thread->native == nullptr) {
        MaybeEnterSignalHandler(thread, cpu);
      }
      break;
    case ThreadState::kReady:
      break;  // handled at dispatch
    case ThreadState::kHalted:
      break;  // signal kept queued; the kernel will unload the thread anyway
  }
}

void CacheKernel::MaybeEnterSignalHandler(ThreadObject* thread, cksim::Cpu& cpu) {
  if (thread->in_signal || thread->signal_count == 0 || thread->signal_handler == 0 ||
      thread->native != nullptr) {
    return;
  }
  VirtAddr addr = thread->signal_queue[thread->signal_head];
  thread->signal_head = (thread->signal_head + 1) % ThreadObject::kSignalQueueDepth;
  thread->signal_count--;
  thread->signals_taken++;

  // Enter the signal function: save pc, pass the translated message address
  // in a0, run the handler until it executes the signal-return trap.
  thread->saved_pc = thread->vm.pc;
  thread->vm.pc = thread->signal_handler;
  thread->vm.regs[ckisa::kRegA0] = addr;
  thread->in_signal = true;
  cpu.Advance(machine_.cost().list_op);
}

void CacheKernel::RemoveSignalRecordsForThread(ThreadObject* thread, cksim::Cpu& cpu) {
  // Walk the thread's registration chain (linked through the records' spare
  // context bits) instead of scanning the whole pmap arena: teardown is
  // O(registrations), independent of map capacity or occupancy. The cost
  // model is unchanged -- one hash_op per removed record, as before; the
  // arena scan was pure host-side overhead.
  const cksim::CostModel& cost = machine_.cost();
  uint32_t slot = threads_.SlotOf(thread);
  uint32_t gen24 = threads_.IdOf(thread).generation & 0xffffffu;
  uint32_t cur = signal_reg_head_[slot];
  while (cur != kNilSignalChain) {
    const MemMapEntry& rec = pmap_.record(cur);
    uint32_t next = rec.signal_next();
    // Chain integrity is enforced by ValidateInvariants; re-check the record
    // before freeing it anyway so a stale head can never free a reused slot.
    if (rec.type() == RecordType::kSignal && rec.signal_thread_slot() == slot &&
        rec.signal_thread_gen24() == gen24) {
      pmap_.Remove(cur);
      cpu.Advance(cost.hash_op);
      if (thread->signal_reg_count > 0) {
        thread->signal_reg_count--;
      }
    }
    cur = next;
  }
  signal_reg_head_[slot] = kNilSignalChain;
  thread->signal_reg_count = 0;
}

void CacheKernel::UnlinkSignalRecord(uint32_t index) {
  const MemMapEntry& rec = pmap_.record(index);
  uint32_t slot = rec.signal_thread_slot();
  if (slot >= threads_.capacity() || !threads_.IsAllocated(slot)) {
    return;
  }
  ThreadObject* thread = threads_.SlotAt(slot);
  if ((threads_.IdOf(thread).generation & 0xffffffu) != rec.signal_thread_gen24()) {
    return;  // names a previous occupant; its chain ended with that thread
  }
  uint32_t cur = signal_reg_head_[slot];
  if (cur == index) {
    signal_reg_head_[slot] = rec.signal_next();
  } else {
    while (cur != kNilSignalChain) {
      MemMapEntry& link = pmap_.record(cur);
      if (link.signal_next() == index) {
        link.set_signal_next(rec.signal_next());
        break;
      }
      cur = link.signal_next();
    }
  }
  if (thread->signal_reg_count > 0) {
    thread->signal_reg_count--;
  }
}

}  // namespace ck

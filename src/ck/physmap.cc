#include "src/ck/physmap.h"

namespace ck {
namespace {

uint32_t NextPowerOfTwo(uint32_t v) {
  uint32_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

PhysicalMemoryMap::PhysicalMemoryMap(uint32_t capacity)
    : records_(capacity), buckets_(NextPowerOfTwo(capacity), kNilRecord) {
  // Chain all records onto the free list through hash_link.
  for (uint32_t i = 0; i < capacity; ++i) {
    records_[i].hash_link = (i + 1 < capacity) ? i + 1 : kNilRecord;
    records_[i].set_type(RecordType::kFree);
  }
  free_head_ = capacity > 0 ? 0 : kNilRecord;
}

uint32_t PhysicalMemoryMap::BucketOf(uint32_t key) const {
  // Fibonacci hash; buckets_ is a power of two.
  uint32_t h = key * 2654435761u;
  return h & (static_cast<uint32_t>(buckets_.size()) - 1);
}

uint32_t PhysicalMemoryMap::Insert(uint32_t key, uint32_t dependent, uint32_t context_low,
                                   RecordType type) {
  if (free_head_ == kNilRecord) {
    return kNilRecord;
  }
  ckbase::VersionWriteScope writer(version_);
  uint32_t index = free_head_;
  MemMapEntry& rec = records_[index];
  free_head_ = rec.hash_link;

  rec.key = key;
  rec.dependent = dependent;
  rec.context = context_low & 0x0fffffffu;
  rec.set_type(type);

  uint32_t bucket = BucketOf(key);
  rec.hash_link = buckets_[bucket];
  buckets_[bucket] = index;
  ++in_use_;
  return index;
}

void PhysicalMemoryMap::Remove(uint32_t index) {
  ckbase::VersionWriteScope writer(version_);
  MemMapEntry& rec = records_[index];
  uint32_t bucket = BucketOf(rec.key);

  // Unlink from the chain.
  uint32_t cur = buckets_[bucket];
  if (cur == index) {
    buckets_[bucket] = rec.hash_link;
  } else {
    while (cur != kNilRecord) {
      MemMapEntry& r = records_[cur];
      if (r.hash_link == index) {
        r.hash_link = rec.hash_link;
        break;
      }
      cur = r.hash_link;
    }
  }

  rec.set_type(RecordType::kFree);
  rec.hash_link = free_head_;
  free_head_ = index;
  --in_use_;
}

uint32_t PhysicalMemoryMap::FindFirst(uint32_t key) const {
  uint32_t cur = buckets_[BucketOf(key)];
  while (cur != kNilRecord && records_[cur].key != key) {
    cur = records_[cur].hash_link;
  }
  return cur;
}

uint32_t PhysicalMemoryMap::NextWithKey(uint32_t index) const {
  uint32_t key = records_[index].key;
  uint32_t cur = records_[index].hash_link;
  while (cur != kNilRecord && records_[cur].key != key) {
    cur = records_[cur].hash_link;
  }
  return cur;
}

uint32_t PhysicalMemoryMap::FindPv(uint32_t frame, uint32_t space_slot,
                                   cksim::VirtAddr vaddr) const {
  cksim::VirtAddr vpage_base = vaddr & ~0xfffu;
  for (uint32_t cur = FindFirst(frame); cur != kNilRecord; cur = NextWithKey(cur)) {
    const MemMapEntry& rec = records_[cur];
    if (rec.type() == RecordType::kPhysToVirt && rec.pv_space_slot() == space_slot &&
        rec.pv_vaddr() == vpage_base) {
      return cur;
    }
  }
  return kNilRecord;
}

}  // namespace ck

// Allocator for page-table blocks inside the Cache Kernel's reserved
// physical-memory arena.
//
// The 68040-format tables are 512 bytes (L1/L2) and 256 bytes (L3). The
// arena hands out 256-byte blocks (one block for an L3 table, two contiguous
// for an L1/L2) from a region carved out of the machine's physical memory at
// boot, so the tables are genuinely walked by the simulated MMU. A free list
// threaded through the blocks themselves keeps the allocator allocation-free.

#ifndef SRC_CK_TABLE_ARENA_H_
#define SRC_CK_TABLE_ARENA_H_

#include <cstdint>

#include "src/sim/pagetable.h"
#include "src/sim/physmem.h"
#include "src/sim/types.h"

namespace ck {

class TableArena {
 public:
  // [base, base+size) must lie inside `memory` and be 512-byte aligned.
  TableArena(cksim::PhysicalMemory& memory, cksim::PhysAddr base, uint32_t size);

  // Allocate and zero one table of the given byte size (256 or 512).
  // Returns 0 on exhaustion.
  cksim::PhysAddr Allocate(uint32_t bytes);
  void Free(cksim::PhysAddr table, uint32_t bytes);

  uint32_t blocks_free() const { return blocks_free_; }
  uint32_t blocks_total() const { return blocks_total_; }

 private:
  static constexpr uint32_t kBlock = 256;

  cksim::PhysicalMemory& memory_;
  cksim::PhysAddr free512_ = 0;  // heads of free lists (0 = empty; the link
  cksim::PhysAddr free256_ = 0;  //  word lives in the first word of a block)
  cksim::PhysAddr bump_ = 0;     // never-used region start
  cksim::PhysAddr end_ = 0;
  uint32_t blocks_free_ = 0;
  uint32_t blocks_total_ = 0;
};

}  // namespace ck

#endif  // SRC_CK_TABLE_ARENA_H_

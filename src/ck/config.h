// Cache Kernel configuration.
//
// The defaults reproduce the prototype configuration reported in Table 1:
// 16 kernel descriptors, 64 address-space descriptors, 256 thread
// descriptors and 65536 MemMapEntry descriptors, with the descriptor arrays
// in (simulated) local RAM.

#ifndef SRC_CK_CONFIG_H_
#define SRC_CK_CONFIG_H_

#include <cstdint>

#include "src/sim/types.h"

namespace ck {

// Victim-selection policy for a descriptor cache (src/ck/object_cache.h).
// kClock is the paper's behavior and the default: a clock scan with second
// chance on the hardware referenced bit for mappings (pool scans have no
// hardware bit, so the clock hand takes the first unpinned slot). kFifo
// evicts the oldest load. kSecondChance extends the clock scan with soft
// referenced bits maintained by the Cache Kernel (thread dispatch, signal
// delivery), giving recently-used descriptors one extra trip of the hand.
enum class ReplacementPolicy : uint8_t { kClock = 0, kFifo = 1, kSecondChance = 2 };

inline const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kClock:
      return "clock";
    case ReplacementPolicy::kFifo:
      return "fifo";
    case ReplacementPolicy::kSecondChance:
      return "second-chance";
  }
  return "?";
}

struct CacheKernelConfig {
  // Descriptor cache capacities (Table 1).
  uint32_t kernel_slots = 16;
  uint32_t space_slots = 64;
  uint32_t thread_slots = 256;
  uint32_t mapping_slots = 65536;

  // Scheduling.
  uint32_t priority_levels = 32;        // 0 = lowest, 31 = highest; max 64
                                        // (the scheduler's ready bitmask is
                                        // one bit per level in a uint64_t)
  cksim::Cycles time_slice = 25000;     // 1 ms at 25 MHz
  uint32_t dispatch_budget = 64;        // guest instructions per CPU turn
  cksim::Cycles quota_window = 2500000; // 100 ms accounting window (section 4.3)
  bool enforce_quotas = true;

  // Messaging.
  bool reverse_tlb_enabled = true;  // ablation A1 disables the fast path
  bool signal_on_write = false;     // ParaDiGM hardware assist: every store to
                                    // a message page generates the signal; off
                                    // means senders signal explicitly
  uint32_t signal_queue_depth = 8;  // per-thread pending signal ring

  // Guest-execution fast path (src/isa/fastpath.h): per-CPU micro-TLB,
  // decoded-instruction cache and batched cycle accounting. Simulated results
  // are identical either way (tests/fastpath_test.cc enforces this); the
  // escape hatch exists for differential testing and debugging
  // (--fastpath=off on any bench/example).
  bool fastpath = true;

  // Superblock trace execution (src/isa/fastpath.h TraceCache): chain decoded
  // instructions across basic-block boundaries and replay them with batched
  // cycle accounting. Requires fastpath; simulated results are identical
  // either way (--trace-exec=off for differential runs).
  bool trace_exec = true;

  // Intra-MPM batch dispatch: collect one guest quantum per runnable CPU and
  // execute the batch on host worker threads under the conservative-window
  // eligibility rules (no shared frames, no signal-on-write message pages).
  // Results are bit-identical with any cpu_host_threads value, including 0
  // (inline execution of the same batch protocol); see docs/PERFORMANCE.md.
  bool cpus_parallel = false;
  uint32_t cpu_host_threads = 0;  // 0 = run batches inline on the main thread

  // Physical memory reserved for the Cache Kernel's page tables, carved from
  // the top of the machine's memory.
  uint32_t page_table_arena_bytes = 1u << 20;

  // Observability: completed FaultTraces retained in the last-N history ring
  // (the per-step histograms accumulate every fault regardless).
  uint32_t fault_history_depth = 64;

  // Boot-time profiler sampling period in cycles between guest-PC samples;
  // 0 (the default) disables sampling. Runtime-mutable through
  // CacheKernel::set_profile_period (a RuntimeKnobs field, like fastpath).
  cksim::Cycles profile_period = 0;

  // Boot-time replacement policy per descriptor cache, indexed by
  // ck::ObjectType (kernel, space, thread, mapping). Runtime-mutable through
  // CacheKernel::set_replacement_policy (a RuntimeKnobs field, like
  // fastpath); this is only the boot default.
  ReplacementPolicy replacement[4] = {ReplacementPolicy::kClock, ReplacementPolicy::kClock,
                                      ReplacementPolicy::kClock, ReplacementPolicy::kClock};

  // Tiered physical memory (docs/TIERING.md). tier_dram_frames bounds how
  // many frames may be DRAM-resident at once; 0 (the default) disables
  // tiering entirely -- every frame stays untracked and behaves like DRAM,
  // which is the pre-tiering behavior bit for bit. All four are runtime-
  // mutable through CacheKernel::set_tiers / set_tier_promote_period
  // (RuntimeKnobs fields, like fastpath); these are only the boot defaults.
  uint32_t tier_dram_frames = 0;
  // Under DRAM pressure: demote the cold victim to the slow tier (true, the
  // default -- keeps its mappings loaded at slow-tier access cost) or fully
  // evict it (false -- unload + write back every mapping, the pre-tiering
  // reclaim behavior, kept for the bench comparison).
  bool tier_demote = true;
  // Cadence of the hot-page promotion scan (harvests leaf-PTE referenced
  // bits over slow-tier frames at the head of the serial turn-preparation
  // phase); 0 disables promotion.
  cksim::Cycles tier_promote_period = 250000;  // 10 ms at 25 MHz
  // Slow-tier frames examined per promotion scan.
  uint32_t tier_scan_frames = 64;
};

}  // namespace ck

#endif  // SRC_CK_CONFIG_H_

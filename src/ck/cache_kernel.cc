// Cache Kernel implementation: object lifecycle, dependency-ordered
// writeback, page tables and resource enforcement. Scheduling/dispatch lives
// in ck_sched.cc and memory-based messaging in ck_signal.cc.

#include "src/ck/cache_kernel.h"

#include <cstring>
#include <string>

#include "src/obs/metrics.h"

namespace ck {

using cksim::Cycles;
using cksim::PhysAddr;
using cksim::VirtAddr;

CacheKernel::CacheKernel(cksim::Machine& machine, const CacheKernelConfig& config)
    : machine_(machine),
      config_(config),
      kernels_(config.kernel_slots),
      spaces_(config.space_slots),
      threads_(config.thread_slots),
      pmap_(config.mapping_slots),
      table_arena_(machine.memory(),
                   machine.memory().size() - config.page_table_arena_bytes,
                   config.page_table_arena_bytes),
      frame_tiers_(machine.memory().page_count()),
      remote_frames_(machine.memory().page_count()) {
  knobs_.fastpath = config.fastpath;
  knobs_.trace_exec = config.trace_exec;
  knobs_.cpus_parallel = config.cpus_parallel;
  knobs_.cpu_host_threads = config.cpu_host_threads;
  knobs_.profile_period = config.profile_period;
  for (uint32_t t = 0; t < kObjectTypeCount; ++t) {
    knobs_.replacement[t] = config.replacement[t];
  }
  knobs_.tier_dram_frames = config.tier_dram_frames;
  knobs_.tier_demote = config.tier_demote;
  knobs_.tier_promote_period = config.tier_promote_period;
  knobs_.tier_scan_frames = config.tier_scan_frames;
  tier_ref_.assign(machine.memory().page_count(), 0);
  tenant_.resize(config.kernel_slots);
  profile_pcs_.resize(config.kernel_slots);
  samplers_.resize(machine.cpu_count());
  if (knobs_.profile_period != 0) {
    for (uint32_t c = 0; c < machine.cpu_count(); ++c) {
      samplers_[c].Arm(machine.cpu(c).clock(), knobs_.profile_period);
    }
  }
  ready_.resize(machine.cpu_count());
  for (auto& queues : ready_) {
    queues = std::vector<ReadyQueue>(config.priority_levels);
  }
  ready_mask_.assign(machine.cpu_count(), 0);
  pending_signals_.resize(machine.cpu_count());
  quota_window_start_.assign(machine.cpu_count(), 0);
  signal_reg_head_.assign(config.thread_slots, kNilSignalChain);
  micro_tlbs_.resize(machine.cpu_count());
  exec_cache_ = std::make_unique<ckisa::ExecCache>(machine.memory());
  trace_caches_.resize(machine.cpu_count());
  for (uint32_t c = 0; c < machine.cpu_count(); ++c) {
    trace_caches_[c] = std::make_unique<ckisa::TraceCache>();
  }
  machine.AttachKernel(this);
}

CacheKernel::~CacheKernel() { StopCpuWorkers(); }

void CacheKernel::set_cpu_host_threads(uint32_t threads) {
  // Quiesce the pool; the next parallel batch respawns it at the new size.
  StopCpuWorkers();
  knobs_.cpu_host_threads = threads;
}

KernelId CacheKernel::BootFirstKernel(AppKernel* handlers, uint64_t cookie) {
  KernelObject* k = kernels_.Allocate();
  *k = KernelObject{};
  k->handlers = handlers;
  k->cookie = cookie;
  k->locked = true;
  k->max_priority = static_cast<uint8_t>(config_.priority_levels - 1);
  for (uint32_t c = 0; c < kMaxCpus; ++c) {
    k->cpu_percent[c] = 100;
  }
  // Full permissions on all physical resources (section 3). The page-table
  // arena stays exclusive to the Cache Kernel.
  uint32_t usable_groups =
      (machine_.memory().size() - config_.page_table_arena_bytes) / cksim::kPageGroupBytes;
  for (uint32_t g = 0; g < usable_groups; ++g) {
    k->SetGroupAccess(g, GroupAccess::kReadWrite);
  }
  for (uint32_t t = 0; t < kObjectTypeCount; ++t) {
    k->locked_limit[t] = 255;
  }
  k->manager_slot = kernels_.SlotOf(k);
  first_kernel_ = KernelId{kernels_.IdOf(k)};
  stats_.loads[static_cast<uint32_t>(ObjectType::kKernel)]++;
  // The first kernel loads itself: the boot load lands on its own account.
  Tenant(kernels_.SlotOf(k)).loads[static_cast<uint32_t>(ObjectType::kKernel)]++;
  return first_kernel_;
}

// ---------------------------------------------------------------------------
// Kernel objects
// ---------------------------------------------------------------------------

Result<KernelId> CacheKernel::LoadKernel(KernelId caller, cksim::Cpu& cpu, AppKernel* handlers,
                                         uint64_t cookie, bool locked) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* mgr = GetKernel(caller);
  if (mgr == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (!(caller == first_kernel_) || handlers == nullptr) {
    // Kernel objects are loaded by, and written back to, the first kernel.
    return CkStatus::kDenied;
  }
  if (kernels_.full()) {
    if (!ReclaimVictim(ObjectType::kKernel, cpu, kernels_.SlotOf(mgr))) {
      stats_.load_failures++;
      return CkStatus::kNoResources;
    }
  }
  if (locked) {
    uint32_t t = static_cast<uint32_t>(ObjectType::kKernel);
    if (mgr->locked_count[t] >= mgr->locked_limit[t]) {
      return CkStatus::kDenied;
    }
    mgr->locked_count[t]++;
  }
  KernelObject* k = kernels_.Allocate();
  *k = KernelObject{};
  k->handlers = handlers;
  k->cookie = cookie;
  k->locked = locked;
  k->manager_slot = kernels_.SlotOf(mgr);
  cpu.Advance(cost.descriptor_init + cost.mem_word * (cksim::kAccessArrayBytes / 4));
  stats_.loads[static_cast<uint32_t>(ObjectType::kKernel)]++;
  Tenant(kernels_.SlotOf(mgr)).loads[static_cast<uint32_t>(ObjectType::kKernel)]++;
  CK_TRACE(Ring(cpu), obs::EventType::kObjectLoad, cpu.clock(),
           static_cast<uint32_t>(ObjectType::kKernel), kernels_.SlotOf(k));
  cpu.Advance(cost.trap_exit);
  return KernelId{kernels_.IdOf(k)};
}

CkStatus CacheKernel::UnloadKernel(KernelId caller, cksim::Cpu& cpu, KernelId kernel) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  if (GetKernel(caller) == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (!(caller == first_kernel_)) {
    return CkStatus::kDenied;
  }
  KernelObject* k = GetKernel(kernel);
  if (k == nullptr) {
    return CkStatus::kStale;
  }
  if (kernel == first_kernel_) {
    return CkStatus::kDenied;  // the SRM never unloads itself
  }
  UnloadKernelInternal(k, cpu, UnloadCause::kExplicit);
  cpu.Advance(cost.trap_exit);
  return CkStatus::kOk;
}

CkStatus CacheKernel::GrantPageGroups(KernelId caller, cksim::Cpu& cpu, KernelId kernel,
                                      uint32_t first_group, uint32_t count, GroupAccess access) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  if (!(caller == first_kernel_)) {
    return CkStatus::kDenied;  // only the SRM changes memory access arrays
  }
  KernelObject* k = GetKernel(kernel);
  if (k == nullptr) {
    return CkStatus::kStale;
  }
  for (uint32_t g = first_group; g < first_group + count; ++g) {
    k->SetGroupAccess(g, access);
  }
  // Revoking access must also evict any of the kernel's loaded mappings into
  // the revoked groups, or the grant would be advisory. Walk the kernel's
  // spaces and unload offending mappings.
  if (access != GroupAccess::kReadWrite) {
    for (uint32_t slot = 0; slot < spaces_.capacity(); ++slot) {
      if (!spaces_.IsAllocated(slot)) {
        continue;
      }
      AddressSpaceObject* space = spaces_.SlotAt(slot);
      if (kernels_.SlotAt(space->kernel_slot) != k) {
        continue;
      }
      // Scan pv records belonging to this space; collect first (unload
      // mutates the map).
      std::vector<uint32_t> victims;
      for (uint32_t i = 0; i < pmap_.capacity(); ++i) {
        const MemMapEntry& rec = pmap_.record(i);
        if (rec.type() != RecordType::kPhysToVirt || rec.pv_space_slot() != slot) {
          continue;
        }
        uint32_t group = cksim::FrameBase(rec.pv_frame()) / cksim::kPageGroupBytes;
        GroupAccess now = k->GroupAccessOf(group);
        bool writable = (rec.pv_flags() & kPvWritable) != 0;
        if (now == GroupAccess::kNone || (writable && now != GroupAccess::kReadWrite)) {
          victims.push_back(i);
        }
      }
      for (uint32_t pv : victims) {
        if (pmap_.record(pv).type() == RecordType::kPhysToVirt) {
          UnloadPvRecord(pv, cpu, UnloadCause::kCascade);
        }
      }
    }
  }
  cpu.Advance(cost.mem_word * ((count + 3) / 4) + cost.trap_exit);
  return CkStatus::kOk;
}

CkStatus CacheKernel::SetCpuQuota(KernelId caller, cksim::Cpu& cpu, KernelId kernel,
                                  const uint8_t percent[kMaxCpus], uint8_t max_priority) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  if (!(caller == first_kernel_)) {
    return CkStatus::kDenied;
  }
  KernelObject* k = GetKernel(kernel);
  if (k == nullptr) {
    return CkStatus::kStale;
  }
  if (max_priority >= config_.priority_levels) {
    return CkStatus::kInvalidArgument;
  }
  for (uint32_t c = 0; c < kMaxCpus; ++c) {
    k->cpu_percent[c] = percent[c];
  }
  k->max_priority = max_priority;
  cpu.Advance(cost.descriptor_init + cost.trap_exit);
  return CkStatus::kOk;
}

CkStatus CacheKernel::SetLockLimits(KernelId caller, cksim::Cpu& cpu, KernelId kernel,
                                    const uint8_t limits[kObjectTypeCount]) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  if (!(caller == first_kernel_)) {
    return CkStatus::kDenied;
  }
  KernelObject* k = GetKernel(kernel);
  if (k == nullptr) {
    return CkStatus::kStale;
  }
  for (uint32_t t = 0; t < kObjectTypeCount; ++t) {
    k->locked_limit[t] = limits[t];
  }
  cpu.Advance(cost.descriptor_init + cost.trap_exit);
  return CkStatus::kOk;
}

// ---------------------------------------------------------------------------
// Address spaces
// ---------------------------------------------------------------------------

Result<SpaceId> CacheKernel::LoadSpace(KernelId caller, cksim::Cpu& cpu, uint64_t cookie,
                                       bool locked) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* owner = GetKernel(caller);
  if (owner == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (spaces_.full()) {
    if (!ReclaimVictim(ObjectType::kSpace, cpu, kernels_.SlotOf(owner))) {
      stats_.load_failures++;
      return CkStatus::kNoResources;
    }
  }
  if (locked) {
    uint32_t t = static_cast<uint32_t>(ObjectType::kSpace);
    if (owner->locked_count[t] >= owner->locked_limit[t]) {
      return CkStatus::kDenied;
    }
    owner->locked_count[t]++;
  }
  PhysAddr root = table_arena_.Allocate(cksim::kL1TableBytes);
  if (root == 0) {
    stats_.load_failures++;
    return CkStatus::kNoResources;
  }
  AddressSpaceObject* space = spaces_.Allocate();
  space->root_table = root;
  space->kernel_slot = kernels_.SlotOf(owner);
  space->kernel_gen = kernels_.IdOf(owner).generation;
  space->cookie = cookie;
  space->mapping_count = 0;
  space->locked = locked;
  space->shared_frame_refs = 0;
  space->message_maps = 0;
  owner->space_count++;
  // Descriptor init plus zeroing the 512-byte root table.
  cpu.Advance(cost.descriptor_init + cost.table_alloc +
              cost.mem_word * (cksim::kL1TableBytes / 4));
  stats_.loads[static_cast<uint32_t>(ObjectType::kSpace)]++;
  Tenant(space->kernel_slot).loads[static_cast<uint32_t>(ObjectType::kSpace)]++;
  CK_TRACE(Ring(cpu), obs::EventType::kObjectLoad, cpu.clock(),
           static_cast<uint32_t>(ObjectType::kSpace), spaces_.SlotOf(space));
  cpu.Advance(cost.trap_exit);
  return SpaceId{spaces_.IdOf(space)};
}

CkStatus CacheKernel::UnloadSpace(KernelId caller, cksim::Cpu& cpu, SpaceId space_id) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* owner = GetKernel(caller);
  AddressSpaceObject* space = GetSpace(space_id);
  if (owner == nullptr || space == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (kernels_.SlotAt(space->kernel_slot) != owner) {
    return CkStatus::kDenied;
  }
  UnloadSpaceInternal(space, cpu, UnloadCause::kExplicit);
  cpu.Advance(cost.trap_exit);
  return CkStatus::kOk;
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

Result<ThreadId> CacheKernel::LoadThread(KernelId caller, cksim::Cpu& cpu,
                                         const ThreadSpec& spec) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* owner = GetKernel(caller);
  if (owner == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  AddressSpaceObject* space = GetSpace(spec.space);
  if (space == nullptr) {
    // The address space was written back concurrently: the application
    // kernel reloads the space and retries (section 2).
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (kernels_.SlotAt(space->kernel_slot) != owner) {
    return CkStatus::kDenied;
  }
  if (spec.priority >= config_.priority_levels || spec.priority > owner->max_priority) {
    return CkStatus::kDenied;  // priority cap, section 4.3
  }
  if (threads_.full()) {
    if (!ReclaimVictim(ObjectType::kThread, cpu, kernels_.SlotOf(owner))) {
      stats_.load_failures++;
      return CkStatus::kNoResources;
    }
  }
  if (spec.locked) {
    uint32_t t = static_cast<uint32_t>(ObjectType::kThread);
    if (owner->locked_count[t] >= owner->locked_limit[t]) {
      return CkStatus::kDenied;
    }
    owner->locked_count[t]++;
  }

  ThreadObject* thread = threads_.Allocate();
  // Reset everything but the embedded list nodes (freshly unlinked).
  thread->state = spec.start_blocked ? ThreadState::kBlocked : ThreadState::kReady;
  thread->priority = spec.priority;
  thread->cpu = spec.cpu_hint != 0xff && spec.cpu_hint < machine_.cpu_count()
                    ? spec.cpu_hint
                    : static_cast<uint8_t>(next_cpu_rr_++ % machine_.cpu_count());
  thread->locked = spec.locked;
  thread->in_signal = false;
  thread->space_slot = spaces_.SlotOf(space);
  thread->space_gen = spaces_.IdOf(space).generation;
  thread->kernel_slot = space->kernel_slot;
  thread->cookie = spec.cookie;
  thread->vm = spec.vm;
  thread->native = spec.native;
  thread->signal_handler = spec.signal_handler;
  thread->saved_pc = 0;
  thread->exception_stack = spec.exception_stack;
  thread->signal_head = 0;
  thread->signal_count = 0;
  thread->signal_reg_count = 0;
  signal_reg_head_[threads_.SlotOf(thread)] = kNilSignalChain;
  thread->slice_remaining = config_.time_slice;
  thread->cpu_consumed = 0;
  thread->signals_taken = 0;
  thread->signals_dropped = 0;

  space->threads.PushBack(thread);
  owner->thread_count++;
  if (thread->state == ThreadState::kReady) {
    Enqueue(thread);
  }
  // Loading a thread copies the full descriptor (register context, stack
  // pointers, signal state) across the interface.
  cpu.Advance(cost.descriptor_init + cost.context_restore + cost.list_op +
              cost.mem_word * (sizeof(ThreadObject) / 4 / 2));
  stats_.loads[static_cast<uint32_t>(ObjectType::kThread)]++;
  Tenant(thread->kernel_slot).loads[static_cast<uint32_t>(ObjectType::kThread)]++;
  CK_TRACE(Ring(cpu), obs::EventType::kObjectLoad, cpu.clock(),
           static_cast<uint32_t>(ObjectType::kThread), threads_.SlotOf(thread));
  cpu.Advance(cost.trap_exit);
  return ThreadId{threads_.IdOf(thread)};
}

CkStatus CacheKernel::UnloadThread(KernelId caller, cksim::Cpu& cpu, ThreadId thread_id) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* owner = GetKernel(caller);
  ThreadObject* thread = GetThread(thread_id);
  if (owner == nullptr || thread == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (kernels_.SlotAt(thread->kernel_slot) != owner) {
    return CkStatus::kDenied;
  }
  UnloadThreadInternal(thread, cpu, UnloadCause::kExplicit);
  cpu.Advance(cost.trap_exit);
  return CkStatus::kOk;
}

CkStatus CacheKernel::SetThreadPriority(KernelId caller, cksim::Cpu& cpu, ThreadId thread_id,
                                        uint8_t priority) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* owner = GetKernel(caller);
  ThreadObject* thread = GetThread(thread_id);
  if (owner == nullptr || thread == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (kernels_.SlotAt(thread->kernel_slot) != owner) {
    return CkStatus::kDenied;
  }
  if (priority >= config_.priority_levels || priority > owner->max_priority) {
    return CkStatus::kDenied;
  }
  // The special call that avoids unload-modify-reload (section 2.3).
  bool requeue = thread->ready_node.linked();
  if (requeue) {
    Dequeue(thread);
  }
  thread->priority = priority;
  if (requeue) {
    Enqueue(thread);
  }
  cpu.Advance(cost.list_op * 2 + cost.trap_exit);
  return CkStatus::kOk;
}

CkStatus CacheKernel::BlockThread(KernelId caller, cksim::Cpu& cpu, ThreadId thread_id) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* owner = GetKernel(caller);
  ThreadObject* thread = GetThread(thread_id);
  if (owner == nullptr || thread == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (kernels_.SlotAt(thread->kernel_slot) != owner) {
    return CkStatus::kDenied;
  }
  if (thread->state == ThreadState::kRunning) {
    cksim::Cpu& target = machine_.cpu(thread->cpu);
    if (CurrentOn(target) == thread) {
      target.current_thread = nullptr;
      cpu.Advance(cost.context_save);
    }
  } else if (thread->ready_node.linked()) {
    Dequeue(thread);
  }
  thread->state = ThreadState::kBlocked;
  cpu.Advance(cost.list_op + cost.trap_exit);
  return CkStatus::kOk;
}

CkStatus CacheKernel::ResumeThread(KernelId caller, cksim::Cpu& cpu, ThreadId thread_id,
                                   bool has_return, uint32_t return_value) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* owner = GetKernel(caller);
  ThreadObject* thread = GetThread(thread_id);
  if (owner == nullptr || thread == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (kernels_.SlotAt(thread->kernel_slot) != owner) {
    return CkStatus::kDenied;
  }
  if (thread->state != ThreadState::kBlocked) {
    return CkStatus::kBusy;
  }
  if (has_return) {
    thread->vm.regs[ckisa::kRegA0] = return_value;
  }
  thread->state = ThreadState::kReady;
  Enqueue(thread);
  cpu.Advance(cost.list_op + cost.trap_exit);
  return CkStatus::kOk;
}

CkStatus CacheKernel::RedirectThread(KernelId caller, cksim::Cpu& cpu, ThreadId thread_id,
                                     cksim::VirtAddr pc, uint32_t a0) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* owner = GetKernel(caller);
  ThreadObject* thread = GetThread(thread_id);
  if (owner == nullptr || thread == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (kernels_.SlotAt(thread->kernel_slot) != owner) {
    return CkStatus::kDenied;
  }
  thread->vm.pc = pc;
  thread->vm.regs[ckisa::kRegA0] = a0;
  if (thread->state == ThreadState::kBlocked || thread->state == ThreadState::kHalted) {
    thread->state = ThreadState::kReady;
    Enqueue(thread);
  }
  cpu.Advance(cost.trap_exit);
  return CkStatus::kOk;
}

// ---------------------------------------------------------------------------
// Page mappings
// ---------------------------------------------------------------------------

cksim::PhysAddr CacheKernel::LeafPteAddr(AddressSpaceObject* space, VirtAddr vaddr, bool create,
                                         cksim::Cpu& cpu) {
  const cksim::CostModel& cost = machine_.cost();
  cksim::PhysicalMemory& mem = machine_.memory();

  PhysAddr l1_slot = space->root_table + cksim::L1Index(vaddr) * 4;
  uint32_t l1 = mem.ReadWord(l1_slot);
  cpu.Advance(cost.table_walk_level);
  if (!cksim::PteValid(l1)) {
    if (!create) {
      return 0;
    }
    PhysAddr l2_table = table_arena_.Allocate(cksim::kL2TableBytes);
    if (l2_table == 0) {
      return 0;
    }
    l1 = cksim::MakePte(l2_table, cksim::kPteValid);
    mem.WriteWord(l1_slot, l1);
    cpu.Advance(cost.table_alloc + cost.pte_write);
  }

  PhysAddr l2_slot = cksim::PteAddress(l1) + cksim::L2Index(vaddr) * 4;
  uint32_t l2 = mem.ReadWord(l2_slot);
  cpu.Advance(cost.table_walk_level);
  if (!cksim::PteValid(l2)) {
    if (!create) {
      return 0;
    }
    PhysAddr l3_table = table_arena_.Allocate(cksim::kL3TableBytes);
    if (l3_table == 0) {
      return 0;
    }
    l2 = cksim::MakePte(l3_table, cksim::kPteValid);
    mem.WriteWord(l2_slot, l2);
    cpu.Advance(cost.table_alloc + cost.pte_write);
  }

  return cksim::PteAddress(l2) + cksim::L3Index(vaddr) * 4;
}

CkStatus CacheKernel::LoadMapping(KernelId caller, cksim::Cpu& cpu, const MappingSpec& spec) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  CkStatus status = [&] {
    KernelObject* owner = GetKernel(caller);
    if (owner == nullptr) {
      stats_.stale_id_errors++;
      return CkStatus::kStale;
    }
    AddressSpaceObject* space = GetSpace(spec.space);
    if (space == nullptr) {
      stats_.stale_id_errors++;
      return CkStatus::kStale;
    }
    if (kernels_.SlotAt(space->kernel_slot) != owner) {
      return CkStatus::kDenied;
    }
    if ((spec.vaddr & cksim::kPageOffsetMask) != 0 || (spec.paddr & cksim::kPageOffsetMask) != 0 ||
        !machine_.memory().Contains(spec.paddr, cksim::kPageSize)) {
      return CkStatus::kInvalidArgument;
    }
    // "the physical address and the access that the application kernel can
    // specify in a new mapping are restricted by its authorized access to
    // physical memory" (section 2.1).
    if (!owner->AllowsPhysical(spec.paddr, spec.flags.writable)) {
      return CkStatus::kDenied;
    }
    ThreadObject* signal_thread = nullptr;
    if (spec.signal_thread.valid()) {
      signal_thread = GetThread(spec.signal_thread);
      if (signal_thread == nullptr) {
        stats_.stale_id_errors++;
        return CkStatus::kStale;
      }
      if (kernels_.SlotAt(signal_thread->kernel_slot) != owner) {
        return CkStatus::kDenied;
      }
    }
    if (spec.locked) {
      uint32_t t = static_cast<uint32_t>(ObjectType::kMapping);
      if (owner->locked_count[t] >= owner->locked_limit[t]) {
        return CkStatus::kDenied;
      }
    }

    // Replace any existing mapping at this (space, vaddr).
    PhysAddr leaf = LeafPteAddr(space, spec.vaddr, /*create=*/true, cpu);
    if (leaf == 0) {
      stats_.load_failures++;
      return CkStatus::kNoResources;
    }
    uint32_t old_pte = machine_.memory().ReadWord(leaf);
    if (cksim::PteValid(old_pte)) {
      uint32_t old_pv = pmap_.FindPv(cksim::PageFrame(cksim::PteAddress(old_pte)),
                                     spaces_.SlotOf(space), spec.vaddr);
      if (old_pv != kNilRecord) {
        UnloadPvRecord(old_pv, cpu, UnloadCause::kCascade);
      }
    }

    // Room for the pv record plus its optional annotation records.
    uint32_t needed = 1 + (signal_thread != nullptr ? 1u : 0u) + (spec.cow_source != 0 ? 1u : 0u);
    while (pmap_.capacity() - pmap_.in_use() < needed) {
      if (!ReclaimVictim(ObjectType::kMapping, cpu, space->kernel_slot)) {
        stats_.load_failures++;
        return CkStatus::kNoResources;
      }
    }

    uint32_t frame = cksim::PageFrame(spec.paddr);
    uint32_t flags = (spec.locked ? kPvLocked : 0) | (spec.flags.message ? kPvMessage : 0) |
                     (spec.flags.writable ? kPvWritable : 0);
    uint32_t pv = pmap_.Insert(frame, (spec.vaddr & ~0xfffu) | flags, spaces_.SlotOf(space),
                               RecordType::kPhysToVirt);
    cpu.Advance(cost.hash_op);
    NoteSharedFrameInsert(pv);

    if (signal_thread != nullptr) {
      uint32_t gen24 = threads_.IdOf(signal_thread).generation & 0xffffffu;
      uint32_t sig_slot = threads_.SlotOf(signal_thread);
      uint32_t sig = pmap_.Insert(pv, (gen24 << 8) | sig_slot, signal_reg_head_[sig_slot],
                                  RecordType::kSignal);
      signal_reg_head_[sig_slot] = sig;
      signal_thread->signal_reg_count++;
      cpu.Advance(cost.hash_op);
      // New signal mapping invalidates stale reverse-TLB entries for the frame.
      FlushReverseTlbFrameAllCpus(frame);
    }
    if (spec.cow_source != 0) {
      pmap_.Insert(pv, cksim::PageFrame(spec.cow_source), 0, RecordType::kCopyOnWrite);
      cpu.Advance(cost.hash_op);
    }
    if (spec.locked) {
      owner->locked_count[static_cast<uint32_t>(ObjectType::kMapping)]++;
    }

    cksim::MapFlags pte_flags = spec.flags;
    machine_.memory().WriteWord(leaf, cksim::MakePte(spec.paddr,
                                                     cksim::kPteValid | pte_flags.ToPteBits()));
    cpu.Advance(cost.pte_write);
    space->mapping_count++;
    stats_.loads[static_cast<uint32_t>(ObjectType::kMapping)]++;
    Tenant(space->kernel_slot).loads[static_cast<uint32_t>(ObjectType::kMapping)]++;
    CK_TRACE(Ring(cpu), obs::EventType::kObjectLoad, cpu.clock(),
             static_cast<uint32_t>(ObjectType::kMapping), spec.vaddr);
    TierAdmitFrame(frame, &cpu, space->kernel_slot);
    return CkStatus::kOk;
  }();
  cpu.Advance(cost.trap_exit);
  return status;
}

CkStatus CacheKernel::LoadMappingAndResume(KernelId caller, cksim::Cpu& cpu,
                                           const MappingSpec& spec, ThreadId faulting_thread) {
  // One trap instead of two: the combined load+resume optimization.
  const cksim::CostModel& cost = machine_.cost();
  CkStatus status = LoadMapping(caller, cpu, spec);
  if (status != CkStatus::kOk) {
    return status;
  }
  ThreadObject* thread = GetThread(faulting_thread);
  if (thread == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  // Combined-call discount: the separate trap entry/exit and the full resume
  // call are folded into the mapping load (charge only the restore).
  cpu.Advance(cost.context_restore);
  fault_trace_.mapping_loaded = cpu.clock();
  CK_TRACE(Ring(cpu), obs::EventType::kFaultMappingLoaded, cpu.clock(),
           static_cast<uint32_t>(ObjectType::kMapping), spec.vaddr);
  if (thread->state == ThreadState::kBlocked) {
    thread->state = ThreadState::kReady;
    Enqueue(thread, /*front=*/true);
  }
  return CkStatus::kOk;
}

CkStatus CacheKernel::UnloadMapping(KernelId caller, cksim::Cpu& cpu, SpaceId space_id,
                                    VirtAddr vaddr) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  CkStatus status = [&] {
    KernelObject* owner = GetKernel(caller);
    AddressSpaceObject* space = GetSpace(space_id);
    if (owner == nullptr || space == nullptr) {
      stats_.stale_id_errors++;
      return CkStatus::kStale;
    }
    if (kernels_.SlotAt(space->kernel_slot) != owner) {
      return CkStatus::kDenied;
    }
    PhysAddr leaf = LeafPteAddr(space, vaddr, /*create=*/false, cpu);
    if (leaf == 0) {
      return CkStatus::kNotFound;
    }
    uint32_t pte = machine_.memory().ReadWord(leaf);
    if (!cksim::PteValid(pte)) {
      return CkStatus::kNotFound;
    }
    uint32_t pv = pmap_.FindPv(cksim::PageFrame(cksim::PteAddress(pte)), spaces_.SlotOf(space),
                               vaddr);
    if (pv == kNilRecord) {
      return CkStatus::kNotFound;
    }
    UnloadPvRecord(pv, cpu, UnloadCause::kExplicit);
    return CkStatus::kOk;
  }();
  cpu.Advance(cost.trap_exit);
  return status;
}

CkStatus CacheKernel::UnloadMappingRange(KernelId caller, cksim::Cpu& cpu, SpaceId space,
                                         VirtAddr vaddr, uint32_t pages) {
  CkStatus last = CkStatus::kNotFound;
  for (uint32_t i = 0; i < pages; ++i) {
    CkStatus s = UnloadMapping(caller, cpu, space, vaddr + i * cksim::kPageSize);
    if (s == CkStatus::kOk || s == CkStatus::kNotFound) {
      if (s == CkStatus::kOk) {
        last = CkStatus::kOk;
      }
      continue;
    }
    return s;  // stale/denied aborts the sweep
  }
  return last;
}

Result<MappingInfo> CacheKernel::QueryMapping(KernelId caller, cksim::Cpu& cpu, SpaceId space_id,
                                              VirtAddr vaddr) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* owner = GetKernel(caller);
  AddressSpaceObject* space = GetSpace(space_id);
  if (owner == nullptr || space == nullptr) {
    stats_.stale_id_errors++;
    return CkStatus::kStale;
  }
  if (kernels_.SlotAt(space->kernel_slot) != owner) {
    return CkStatus::kDenied;
  }
  PhysAddr leaf = LeafPteAddr(space, vaddr, /*create=*/false, cpu);
  if (leaf == 0) {
    cpu.Advance(cost.trap_exit);
    return CkStatus::kNotFound;
  }
  uint32_t pte = machine_.memory().ReadWord(leaf);
  if (!cksim::PteValid(pte)) {
    cpu.Advance(cost.trap_exit);
    return CkStatus::kNotFound;
  }
  MappingInfo info;
  info.paddr = cksim::PteAddress(pte);
  info.writable = (pte & cksim::kPteWritable) != 0;
  info.message = (pte & cksim::kPteMessage) != 0;
  info.referenced = (pte & cksim::kPteReferenced) != 0;
  info.modified = (pte & cksim::kPteModified) != 0;
  uint32_t pv = pmap_.FindPv(cksim::PageFrame(info.paddr), spaces_.SlotOf(space), vaddr);
  info.locked = pv != kNilRecord && pmap_.record(pv).pv_locked();
  cpu.Advance(cost.trap_exit);
  return info;
}

CkStatus CacheKernel::LockMapping(KernelId caller, cksim::Cpu& cpu, SpaceId space_id,
                                  VirtAddr vaddr, bool locked) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  CkStatus status = [&] {
    KernelObject* owner = GetKernel(caller);
    AddressSpaceObject* space = GetSpace(space_id);
    if (owner == nullptr || space == nullptr) {
      stats_.stale_id_errors++;
      return CkStatus::kStale;
    }
    if (kernels_.SlotAt(space->kernel_slot) != owner) {
      return CkStatus::kDenied;
    }
    PhysAddr leaf = LeafPteAddr(space, vaddr, /*create=*/false, cpu);
    if (leaf == 0) {
      return CkStatus::kNotFound;
    }
    uint32_t pte = machine_.memory().ReadWord(leaf);
    if (!cksim::PteValid(pte)) {
      return CkStatus::kNotFound;
    }
    uint32_t pv = pmap_.FindPv(cksim::PageFrame(cksim::PteAddress(pte)), spaces_.SlotOf(space),
                               vaddr);
    if (pv == kNilRecord) {
      return CkStatus::kNotFound;
    }
    MemMapEntry& rec = pmap_.record(pv);
    uint32_t t = static_cast<uint32_t>(ObjectType::kMapping);
    if (locked && !rec.pv_locked()) {
      if (owner->locked_count[t] >= owner->locked_limit[t]) {
        return CkStatus::kDenied;
      }
      owner->locked_count[t]++;
      rec.dependent |= kPvLocked;
    } else if (!locked && rec.pv_locked()) {
      owner->locked_count[t]--;
      rec.dependent &= ~kPvLocked;
    }
    return CkStatus::kOk;
  }();
  cpu.Advance(cost.trap_exit);
  return status;
}

// ---------------------------------------------------------------------------
// Effective lock chains (section 4.2: "a locked mapping can be reclaimed
// unless its address space, its kernel object and its signal thread (if any)
// are locked")
// ---------------------------------------------------------------------------

bool CacheKernel::SpaceEffectivelyLocked(AddressSpaceObject* s) {
  if (!s->locked) {
    return false;
  }
  return kernels_.SlotAt(s->kernel_slot)->locked;
}

bool CacheKernel::ThreadEffectivelyLocked(ThreadObject* t) {
  if (!t->locked) {
    return false;
  }
  AddressSpaceObject* space = spaces_.Lookup(ckbase::PoolId{t->space_slot, t->space_gen});
  return space != nullptr && SpaceEffectivelyLocked(space);
}

bool CacheKernel::MappingEffectivelyLocked(uint32_t pv_index) {
  MemMapEntry& rec = pmap_.record(pv_index);
  if (!rec.pv_locked()) {
    return false;
  }
  AddressSpaceObject* space = spaces_.SlotAt(rec.pv_space_slot());
  if (!SpaceEffectivelyLocked(space)) {
    return false;
  }
  // Every signal thread on this mapping must itself be effectively locked.
  for (uint32_t cur = pmap_.FindFirst(pv_index); cur != kNilRecord;
       cur = pmap_.NextWithKey(cur)) {
    const MemMapEntry& dep = pmap_.record(cur);
    if (dep.type() != RecordType::kSignal) {
      continue;
    }
    ThreadObject* t = threads_.SlotAt(dep.signal_thread_slot());
    if (!ThreadEffectivelyLocked(t)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Reclamation (capacity-forced victims)
//
// The scans themselves live in ObjectCache::Reclaim (src/ck/object_cache.h);
// these Ops structs are the per-type glue: occupancy, the section 4.2
// effective-lock pin chains, pass eligibility, the hardware referenced bit,
// and eviction (stats + trace + the Figure 6 writeback cascade).
// ---------------------------------------------------------------------------

struct CacheKernel::KernelVictimOps {
  static constexpr int kPasses = 1;
  static constexpr bool kScanOccupiedSteps = false;
  CacheKernel& ck;
  cksim::Cpu& cpu;
  bool Occupied(uint32_t slot) const { return ck.kernels_.IsAllocated(slot); }
  bool Eligible(uint32_t, int) const { return true; }
  bool Pinned(uint32_t slot) { return ck.KernelEffectivelyLocked(ck.kernels_.SlotAt(slot)); }
  bool TestAndClearReferenced(uint32_t) { return false; }  // no hardware bit
  void Evict(uint32_t slot) {
    ck.stats_.reclamations[static_cast<uint32_t>(ObjectType::kKernel)]++;
    CK_TRACE(ck.Ring(cpu), obs::EventType::kObjectReclaim, cpu.clock(),
             static_cast<uint32_t>(ObjectType::kKernel), slot);
    ck.UnloadKernelInternal(ck.kernels_.SlotAt(slot), cpu, UnloadCause::kReclaim);
  }
};

struct CacheKernel::SpaceVictimOps {
  static constexpr int kPasses = 1;
  static constexpr bool kScanOccupiedSteps = false;
  CacheKernel& ck;
  cksim::Cpu& cpu;
  bool Occupied(uint32_t slot) const { return ck.spaces_.IsAllocated(slot); }
  bool Eligible(uint32_t, int) const { return true; }
  bool Pinned(uint32_t slot) { return ck.SpaceEffectivelyLocked(ck.spaces_.SlotAt(slot)); }
  bool TestAndClearReferenced(uint32_t) { return false; }
  void Evict(uint32_t slot) {
    ck.stats_.reclamations[static_cast<uint32_t>(ObjectType::kSpace)]++;
    CK_TRACE(ck.Ring(cpu), obs::EventType::kObjectReclaim, cpu.clock(),
             static_cast<uint32_t>(ObjectType::kSpace), slot);
    ck.UnloadSpaceInternal(ck.spaces_.SlotAt(slot), cpu, UnloadCause::kReclaim);
  }
};

struct CacheKernel::ThreadVictimOps {
  // Prefer blocked threads, then ready/halted, then running (a running
  // victim costs a context switch, section 4.2).
  static constexpr int kPasses = 3;
  static constexpr bool kScanOccupiedSteps = false;
  CacheKernel& ck;
  cksim::Cpu& cpu;
  bool Occupied(uint32_t slot) const { return ck.threads_.IsAllocated(slot); }
  bool Eligible(uint32_t slot, int pass) const {
    ThreadObject* t = ck.threads_.SlotAt(slot);
    return (pass == 0 && t->state == ThreadState::kBlocked) ||
           (pass == 1 &&
            (t->state == ThreadState::kReady || t->state == ThreadState::kHalted)) ||
           pass == 2;
  }
  bool Pinned(uint32_t slot) { return ck.ThreadEffectivelyLocked(ck.threads_.SlotAt(slot)); }
  bool TestAndClearReferenced(uint32_t) { return false; }
  void Evict(uint32_t slot) {
    ck.stats_.reclamations[static_cast<uint32_t>(ObjectType::kThread)]++;
    CK_TRACE(ck.Ring(cpu), obs::EventType::kObjectReclaim, cpu.clock(),
             static_cast<uint32_t>(ObjectType::kThread), slot);
    ck.UnloadThreadInternal(ck.threads_.SlotAt(slot), cpu, UnloadCause::kReclaim);
  }
};

struct CacheKernel::MappingVictimOps {
  static constexpr int kPasses = 1;
  static constexpr bool kScanOccupiedSteps = true;  // budget counts pv visits
  CacheKernel& ck;
  cksim::Cpu& cpu;
  bool Occupied(uint32_t index) const {
    return ck.pmap_.record(index).type() == RecordType::kPhysToVirt;
  }
  bool Eligible(uint32_t, int) const { return true; }
  bool Pinned(uint32_t index) { return ck.MappingEffectivelyLocked(index); }
  // The mapping caches' referenced bit is the real one in the leaf PTE; the
  // walk and the clearing write are charged like any other table access.
  bool TestAndClearReferenced(uint32_t index) {
    MemMapEntry& rec = ck.pmap_.record(index);
    AddressSpaceObject* space = ck.spaces_.SlotAt(rec.pv_space_slot());
    PhysAddr leaf = ck.LeafPteAddr(space, rec.pv_vaddr(), /*create=*/false, cpu);
    if (leaf == 0) {
      return false;
    }
    uint32_t pte = ck.machine_.memory().ReadWord(leaf);
    if ((pte & cksim::kPteReferenced) == 0) {
      return false;
    }
    ck.machine_.memory().WriteWord(leaf, pte & ~cksim::kPteReferenced);
    cpu.Advance(ck.machine_.cost().pte_write);
    return true;
  }
  void Evict(uint32_t index) {
    ck.stats_.reclamations[static_cast<uint32_t>(ObjectType::kMapping)]++;
    CK_TRACE(ck.Ring(cpu), obs::EventType::kObjectReclaim, cpu.clock(),
             static_cast<uint32_t>(ObjectType::kMapping), ck.pmap_.record(index).pv_vaddr());
    ck.UnloadPvRecord(index, cpu, UnloadCause::kReclaim);
  }
};

bool CacheKernel::ReclaimVictim(ObjectType type, cksim::Cpu& cpu, uint32_t requester_slot) {
  uint32_t t = static_cast<uint32_t>(type);
  ReplacementPolicy policy = knobs_.replacement[t];
  uint64_t steps = 0;
  bool evicted = false;
  switch (type) {
    case ObjectType::kKernel: {
      KernelVictimOps ops{*this, cpu};
      evicted = kernels_.Reclaim(policy, ops, steps);
      break;
    }
    case ObjectType::kSpace: {
      SpaceVictimOps ops{*this, cpu};
      evicted = spaces_.Reclaim(policy, ops, steps);
      break;
    }
    case ObjectType::kThread: {
      ThreadVictimOps ops{*this, cpu};
      evicted = threads_.Reclaim(policy, ops, steps);
      break;
    }
    case ObjectType::kMapping: {
      MappingVictimOps ops{*this, cpu};
      evicted = pmap_.Reclaim(policy, ops, steps);
      break;
    }
  }
  stats_.reclaim_scan_steps[t] += steps;
  // The scan was forced by the requester's load, not by whoever owns the
  // victims examined, so it bills the loading kernel.
  Tenant(requester_slot).reclaim_scan_steps[t] += steps;
  return evicted;
}

// ---------------------------------------------------------------------------
// Tiered physical memory (docs/TIERING.md)
//
// DRAM is a cache over the slow tier the same way the descriptor pools are
// caches over application-kernel state: admission on load, the same pluggable
// victim scan under pressure, and a cheaper writeback -- demotion keeps a
// cold frame's mappings loaded at slow-tier fill cost where full eviction
// pays the dependency-ordered unload cascade. Every transition runs at a
// deterministic serial point (kernel calls, the turn-preparation maintenance
// scan); the batch execution phase only reads tier state, so the plain
// per-frame tier bytes never race.
// ---------------------------------------------------------------------------

void CacheKernel::SetFrameTierInternal(uint32_t frame, cksim::MemTier to, TierChange why,
                                       uint32_t tenant_slot) {
  cksim::PhysicalMemory& mem = machine_.memory();
  cksim::MemTier from = mem.tier_of(frame);
  if (from == to) {
    return;
  }
  mem.SetFrameTier(frame, to);
  if (to == cksim::MemTier::kNone) {
    frame_tiers_.OnRelease(frame);
  } else if (from == cksim::MemTier::kNone) {
    frame_tiers_.OnLoad(frame);
  } else {
    frame_tiers_.Touch(frame);  // migration counts as a fresh use either way
  }
  tier_ref_[frame] = 0;  // referenced evidence does not survive a transition
  bool valid_slot = tenant_slot < tenant_.size();
  switch (why) {
    case TierChange::kAdmit:
      stats_.tier_admissions++;
      if (valid_slot) {
        Tenant(tenant_slot).tier_admissions++;
      }
      break;
    case TierChange::kDemote:
      stats_.tier_demotions++;
      if (valid_slot) {
        Tenant(tenant_slot).tier_demotions++;
      }
      break;
    case TierChange::kPromote:
      stats_.tier_promotions++;
      if (valid_slot) {
        Tenant(tenant_slot).tier_promotions++;
      }
      break;
    case TierChange::kEvict:
      stats_.tier_evictions++;
      if (valid_slot) {
        Tenant(tenant_slot).tier_evictions++;
      }
      break;
    case TierChange::kRelease:
      if (from == cksim::MemTier::kDram) {
        stats_.tier_release_dram++;
      } else {
        stats_.tier_release_slow++;
      }
      break;
  }
}

void CacheKernel::TierAdmitFrame(uint32_t frame, cksim::Cpu* cpu, uint32_t requester_slot) {
  if (!TierEnabled() || frame >= machine_.memory().page_count()) {
    return;
  }
  cksim::PhysicalMemory& mem = machine_.memory();
  if (mem.tier_of(frame) != cksim::MemTier::kNone) {
    frame_tiers_.Touch(frame);  // already tracked: recency refresh only
    return;
  }
  // Make room first. Pool-hook admissions arrive without a CPU to charge the
  // reclaim work to; they admit over budget and the next maintenance scan
  // trims DRAM back down.
  if (cpu != nullptr) {
    while (mem.tier_count(cksim::MemTier::kDram) >= knobs_.tier_dram_frames) {
      if (!TierReclaimOne(*cpu, requester_slot, frame)) {
        break;  // every candidate pinned: admit over budget
      }
    }
  }
  SetFrameTierInternal(frame, cksim::MemTier::kDram, TierChange::kAdmit, requester_slot);
  if (cpu != nullptr) {
    CK_TRACE(Ring(*cpu), obs::EventType::kTierAdmit, cpu->clock(), requester_slot, frame);
  }
}

// The demotion victim scan: the same generic Reclaim engine as the four
// descriptor caches, run over physical frames under the mapping cache's
// replacement policy. Occupied slots are DRAM-resident frames.
struct CacheKernel::FrameTierOps {
  static constexpr int kPasses = 1;
  static constexpr bool kScanOccupiedSteps = true;  // budget counts DRAM visits
  CacheKernel& ck;
  cksim::Cpu& cpu;
  uint32_t requester_slot;
  uint32_t exclude;
  bool HasPvMapping(uint32_t frame) const {
    for (uint32_t cur = ck.pmap_.FindFirst(frame); cur != kNilRecord;
         cur = ck.pmap_.NextWithKey(cur)) {
      if (ck.pmap_.record(cur).type() == RecordType::kPhysToVirt) {
        return true;
      }
    }
    return false;
  }
  bool Occupied(uint32_t frame) const {
    if (ck.machine_.memory().tier_of(frame) != cksim::MemTier::kDram || frame == exclude) {
      return false;
    }
    // Full-evict mode reclaims through the mapping writeback path, so only
    // frames with at least one virtual mapping are candidates: mapping-less
    // pool pages (file-cache data) pin DRAM under that mode -- exactly the
    // contrast bench/memory_tiers.cc measures against demotion.
    return ck.knobs_.tier_demote || HasPvMapping(frame);
  }
  bool Eligible(uint32_t, int) const { return true; }
  bool Pinned(uint32_t frame) { return ck.TierFramePinned(frame); }
  bool TestAndClearReferenced(uint32_t frame) {
    return ck.TierTestAndClearReferenced(frame, cpu);
  }
  void Evict(uint32_t frame) {
    uint32_t owner = ck.TierOwnerSlot(frame, requester_slot);
    if (ck.knobs_.tier_demote) {
      // Demote: the mappings stay loaded; accesses re-fill their TLB entries
      // and pay the slow tier's fill latency until promotion brings the frame
      // back.
      ck.TierFlushFrame(frame, cpu);
      cpu.Advance(ck.machine_.cost().tier_demote);
      ck.SetFrameTierInternal(frame, cksim::MemTier::kSlow, TierChange::kDemote, owner);
      CK_TRACE(ck.Ring(cpu), obs::EventType::kTierDemote, cpu.clock(), owner, frame);
    } else {
      // Full evict: unload (and write back) every virtual mapping of the
      // frame, then drop it from tier tracking -- the pre-tiering reclaim
      // behavior the bench compares demotion against.
      for (;;) {
        uint32_t pv = kNilRecord;
        for (uint32_t cur = ck.pmap_.FindFirst(frame); cur != kNilRecord;
             cur = ck.pmap_.NextWithKey(cur)) {
          if (ck.pmap_.record(cur).type() == RecordType::kPhysToVirt) {
            pv = cur;
            break;
          }
        }
        if (pv == kNilRecord) {
          break;
        }
        ck.UnloadPvRecord(pv, cpu, UnloadCause::kReclaim);
      }
      ck.SetFrameTierInternal(frame, cksim::MemTier::kNone, TierChange::kEvict, owner);
      CK_TRACE(ck.Ring(cpu), obs::EventType::kTierEvict, cpu.clock(), owner, frame);
    }
  }
};

bool CacheKernel::TierReclaimOne(cksim::Cpu& cpu, uint32_t requester_slot, uint32_t exclude) {
  FrameTierOps ops{*this, cpu, requester_slot, exclude};
  uint64_t steps = 0;
  ReplacementPolicy policy = knobs_.replacement[static_cast<uint32_t>(ObjectType::kMapping)];
  bool evicted = frame_tiers_.Reclaim(policy, ops, steps);
  stats_.tier_scan_steps += steps;
  return evicted;
}

void CacheKernel::TierMaintenance(cksim::Cpu& cpu) {
  if (!TierEnabled() || knobs_.tier_promote_period == 0 || cpu.clock() < tier_next_scan_) {
    return;
  }
  tier_next_scan_ = cpu.clock() + knobs_.tier_promote_period;
  cksim::PhysicalMemory& mem = machine_.memory();
  uint32_t fallback_slot = first_kernel_.id.slot;
  // Trim DRAM back to budget: pool-hook admissions overshoot (no CPU to
  // charge reclaim work to at allocation time) and settle here.
  while (mem.tier_count(cksim::MemTier::kDram) > knobs_.tier_dram_frames) {
    if (!TierReclaimOne(cpu, fallback_slot, kNoFrame)) {
      break;
    }
  }
  // Hot-page promotion: a bounded round-robin sweep over slow-tier frames,
  // harvesting referenced evidence; hot frames migrate back to DRAM. Every
  // promotion opens a causal span so the migration's downstream cost (the
  // demotions it forces, the TLB refills) is attributable.
  uint32_t page_count = mem.page_count();
  uint32_t budget = knobs_.tier_scan_frames;
  uint32_t hand = tier_promote_hand_;
  for (uint32_t i = 0; i < page_count && budget > 0; ++i) {
    uint32_t frame = hand;
    hand = (hand + 1) % page_count;
    if (mem.tier_of(frame) != cksim::MemTier::kSlow) {
      continue;
    }
    --budget;
    stats_.tier_scan_steps++;
    if (!TierTestAndClearReferenced(frame, cpu)) {
      continue;
    }
    while (mem.tier_count(cksim::MemTier::kDram) >= knobs_.tier_dram_frames) {
      if (!TierReclaimOne(cpu, fallback_slot, frame)) {
        break;
      }
    }
    uint32_t owner = TierOwnerSlot(frame, fallback_slot);
    uint32_t span = machine_.AllocSpanId();
    CK_TRACE(Ring(cpu), obs::EventType::kSpanBegin, cpu.clock(),
             static_cast<uint16_t>(obs::EventType::kTierPromote), span);
    TierFlushFrame(frame, cpu);
    cpu.Advance(machine_.cost().tier_promote);
    SetFrameTierInternal(frame, cksim::MemTier::kDram, TierChange::kPromote, owner);
    CK_TRACE(Ring(cpu), obs::EventType::kTierPromote, cpu.clock(), owner, frame);
  }
  tier_promote_hand_ = hand;
}

bool CacheKernel::TierTestAndClearReferenced(uint32_t frame, cksim::Cpu& cpu) {
  bool hot = tier_ref_[frame] != 0;
  tier_ref_[frame] = 0;
  // OR over the hardware referenced bits of every virtual mapping; all are
  // consumed so the next scan sees only fresh use. The walks and clearing
  // writes are charged like any other table access.
  for (uint32_t cur = pmap_.FindFirst(frame); cur != kNilRecord; cur = pmap_.NextWithKey(cur)) {
    const MemMapEntry& rec = pmap_.record(cur);
    if (rec.type() != RecordType::kPhysToVirt || rec.pv_frame() != frame) {
      continue;
    }
    AddressSpaceObject* space = spaces_.SlotAt(rec.pv_space_slot());
    PhysAddr leaf = LeafPteAddr(space, rec.pv_vaddr(), /*create=*/false, cpu);
    if (leaf == 0) {
      continue;
    }
    uint32_t pte = machine_.memory().ReadWord(leaf);
    if ((pte & cksim::kPteReferenced) != 0) {
      machine_.memory().WriteWord(leaf, pte & ~cksim::kPteReferenced);
      cpu.Advance(machine_.cost().pte_write);
      hot = true;
    }
  }
  return hot;
}

bool CacheKernel::TierFramePinned(uint32_t frame) {
  for (uint32_t cur = pmap_.FindFirst(frame); cur != kNilRecord; cur = pmap_.NextWithKey(cur)) {
    const MemMapEntry& rec = pmap_.record(cur);
    if (rec.type() != RecordType::kPhysToVirt || rec.pv_frame() != frame) {
      continue;
    }
    if (MappingEffectivelyLocked(cur)) {
      return true;
    }
  }
  return false;
}

void CacheKernel::TierFlushFrame(uint32_t frame, cksim::Cpu& cpu) {
  // A migration retargets the frame's physical medium: every TLB entry
  // naming it is flushed so the next access re-fills and pays the new tier's
  // fill cost (the micro-TLBs hold hints into the real TLBs, so they
  // revalidate automatically).
  for (uint32_t cur = pmap_.FindFirst(frame); cur != kNilRecord; cur = pmap_.NextWithKey(cur)) {
    const MemMapEntry& rec = pmap_.record(cur);
    if (rec.type() != RecordType::kPhysToVirt || rec.pv_frame() != frame) {
      continue;
    }
    FlushTlbPageAllCpus(static_cast<uint16_t>(rec.pv_space_slot()),
                        rec.pv_vaddr() >> cksim::kPageShift, cpu);
  }
  FlushReverseTlbFrameAllCpus(frame);
}

uint32_t CacheKernel::TierOwnerSlot(uint32_t frame, uint32_t fallback) {
  for (uint32_t cur = pmap_.FindFirst(frame); cur != kNilRecord; cur = pmap_.NextWithKey(cur)) {
    const MemMapEntry& rec = pmap_.record(cur);
    if (rec.type() != RecordType::kPhysToVirt || rec.pv_frame() != frame) {
      continue;
    }
    uint32_t space_slot = rec.pv_space_slot();
    if (space_slot < spaces_.capacity() && spaces_.IsAllocated(space_slot)) {
      return spaces_.SlotAt(space_slot)->kernel_slot;
    }
  }
  return fallback;
}

cksim::Cycles CacheKernel::TierSlowTouchCycles(PhysAddr addr, uint32_t len) const {
  if (!TierEnabled() || len == 0) {
    return 0;
  }
  const cksim::PhysicalMemory& mem = machine_.memory();
  Cycles extra = 0;
  uint32_t last = cksim::PageFrame(addr + len - 1);
  for (uint32_t f = cksim::PageFrame(addr); f <= last; ++f) {
    if (mem.tier_of(f) == cksim::MemTier::kSlow) {
      extra += machine_.cost().tier_slow_fill;
    }
  }
  return extra;
}

void CacheKernel::TierTouch(PhysAddr addr) {
  uint32_t frame = cksim::PageFrame(addr);
  if (!TierEnabled() || frame >= machine_.memory().page_count()) {
    return;
  }
  tier_ref_[frame] = 1;
  if (machine_.memory().tier_of(frame) != cksim::MemTier::kNone) {
    frame_tiers_.Touch(frame);
  }
}

void CacheKernel::TierFramePoolEvent(KernelId owner, PhysAddr frame_addr, bool allocated) {
  uint32_t frame = cksim::PageFrame(frame_addr);
  if (frame >= machine_.memory().page_count()) {
    return;
  }
  if (allocated) {
    TierAdmitFrame(frame, /*cpu=*/nullptr, owner.id.slot);
  } else if (machine_.memory().tier_of(frame) != cksim::MemTier::kNone) {
    SetFrameTierInternal(frame, cksim::MemTier::kNone, TierChange::kRelease, owner.id.slot);
  }
}

uint8_t CacheKernel::FrameTierOf(PhysAddr addr) const {
  uint32_t frame = cksim::PageFrame(addr);
  if (frame >= machine_.memory().page_count()) {
    return static_cast<uint8_t>(cksim::MemTier::kNone);
  }
  return static_cast<uint8_t>(machine_.memory().tier_of(frame));
}

void CacheKernel::RestoreFrameTier(PhysAddr addr, uint8_t tier) {
  uint32_t frame = cksim::PageFrame(addr);
  if (frame >= machine_.memory().page_count() ||
      tier >= static_cast<uint8_t>(cksim::kMemTierCount)) {
    return;
  }
  cksim::MemTier target = static_cast<cksim::MemTier>(tier);
  cksim::MemTier cur = machine_.memory().tier_of(frame);
  if (cur == target) {
    return;
  }
  // Reinstate the placement through the normal transitions (no charges, no
  // budget enforcement -- this replays state, it does not simulate work), so
  // the CkStats conservation identities keep holding after a round trip.
  uint32_t slot = first_kernel_.id.slot;
  switch (target) {
    case cksim::MemTier::kNone:
      SetFrameTierInternal(frame, cksim::MemTier::kNone, TierChange::kRelease, slot);
      break;
    case cksim::MemTier::kDram:
      if (cur == cksim::MemTier::kNone) {
        SetFrameTierInternal(frame, cksim::MemTier::kDram, TierChange::kAdmit, slot);
      } else {
        SetFrameTierInternal(frame, cksim::MemTier::kDram, TierChange::kPromote, slot);
      }
      break;
    case cksim::MemTier::kSlow:
      if (cur == cksim::MemTier::kNone) {
        SetFrameTierInternal(frame, cksim::MemTier::kDram, TierChange::kAdmit, slot);
      }
      SetFrameTierInternal(frame, cksim::MemTier::kSlow, TierChange::kDemote, slot);
      break;
  }
}

// ---------------------------------------------------------------------------
// Cascaded unloads (Figure 6 dependency order)
// ---------------------------------------------------------------------------

namespace {

// Dependents of an unloading object are involuntary writebacks; only a
// kDiscard parent (invariant repair, no writeback) propagates as-is.
UnloadCause CascadeCause(UnloadCause parent) {
  return parent == UnloadCause::kDiscard ? UnloadCause::kDiscard : UnloadCause::kCascade;
}

}  // namespace

// Attribute the unload to exactly one counter, then run the owner's
// writeback handler (for every cause except kDiscard).
void CacheKernel::UnloadPvRecord(uint32_t pv_index, cksim::Cpu& cpu, UnloadCause cause,
                                 bool consistency_cascade) {
  const cksim::CostModel& cost = machine_.cost();
  MemMapEntry& rec = pmap_.record(pv_index);
  uint32_t frame = rec.pv_frame();
  VirtAddr vaddr = rec.pv_vaddr();
  uint32_t space_slot = rec.pv_space_slot();
  AddressSpaceObject* space = spaces_.SlotAt(space_slot);
  KernelObject* owner = kernels_.SlotAt(space->kernel_slot);

  // Gather and clear the hardware state.
  MappingWriteback record;
  record.space_cookie = space->cookie;
  record.vaddr = vaddr;
  record.pframe = frame;
  record.writable = (rec.pv_flags() & kPvWritable) != 0;
  record.message = rec.pv_message();

  PhysAddr leaf = LeafPteAddr(space, vaddr, /*create=*/false, cpu);
  if (leaf != 0) {
    uint32_t pte = machine_.memory().ReadWord(leaf);
    if (cksim::PteValid(pte)) {
      record.referenced = (pte & cksim::kPteReferenced) != 0;
      record.modified = (pte & cksim::kPteModified) != 0;
      machine_.memory().WriteWord(leaf, 0);
      cpu.Advance(cost.pte_write);
    }
  }
  FlushTlbPageAllCpus(static_cast<uint16_t>(space_slot), vaddr >> cksim::kPageShift, cpu);
  FlushReverseTlbFrameAllCpus(frame);

  // Remove annotation records (signal registrations, cow source).
  bool had_signal = false;
  uint32_t cur = pmap_.FindFirst(pv_index);
  while (cur != kNilRecord) {
    uint32_t next = pmap_.NextWithKey(cur);
    MemMapEntry& dep = pmap_.record(cur);
    if (dep.type() == RecordType::kSignal) {
      had_signal = true;
      UnlinkSignalRecord(cur);
      pmap_.Remove(cur);
      cpu.Advance(cost.hash_op);
    } else if (dep.type() == RecordType::kCopyOnWrite) {
      pmap_.Remove(cur);
      cpu.Advance(cost.hash_op);
    }
    cur = next;
  }
  record.had_signal = had_signal;

  if (rec.pv_locked()) {
    uint32_t t = static_cast<uint32_t>(ObjectType::kMapping);
    if (owner->locked_count[t] > 0) {
      owner->locked_count[t]--;
    }
  }

  NoteSharedFrameRemove(pv_index);
  pmap_.Remove(pv_index);
  cpu.Advance(cost.hash_op);
  space->mapping_count--;

  // Multi-mapping consistency (section 4.2): flushing a signal mapping
  // flushes every writable mapping of the frame, so a sender can never
  // signal into a page whose receivers have lost their mappings.
  if (had_signal && consistency_cascade) {
    std::vector<uint32_t> writable_peers;
    for (uint32_t peer = pmap_.FindFirst(frame); peer != kNilRecord;
         peer = pmap_.NextWithKey(peer)) {
      const MemMapEntry& p = pmap_.record(peer);
      if (p.type() == RecordType::kPhysToVirt && (p.pv_flags() & kPvWritable) != 0) {
        writable_peers.push_back(peer);
      }
    }
    for (uint32_t peer : writable_peers) {
      if (pmap_.record(peer).type() == RecordType::kPhysToVirt) {
        UnloadPvRecord(peer, cpu, CascadeCause(cause), /*consistency_cascade=*/false);
      }
    }
  }

  if (cause != UnloadCause::kDiscard) {
    cpu.Advance(cost.writeback_record);
    uint32_t t = static_cast<uint32_t>(ObjectType::kMapping);
    if (cause == UnloadCause::kExplicit) {
      stats_.explicit_unloads[t]++;
      Tenant(kernels_.SlotOf(owner)).explicit_unloads[t]++;
    } else {
      stats_.writebacks[t]++;
      Tenant(kernels_.SlotOf(owner)).writebacks[t]++;
    }
    CK_TRACE(Ring(cpu), obs::EventType::kObjectWriteback, cpu.clock(),
             static_cast<uint32_t>(ObjectType::kMapping), record.vaddr);
    CkApi api(*this, IdOfKernel(owner), cpu);
    owner->handlers->OnMappingWriteback(record, api);
  }
}

// shared_frame_refs transitions when the frame's phys-to-virt mapping count
// crosses 2: at 1 -> 2 the pre-existing mapping's space starts counting the
// frame too (it just lost exclusivity); at 2 -> 1 the survivor stops. Above
// 2 only the inserted/removed mapping's own space adjusts. Duplicate
// mappings within one space count conservatively -- the space merely loses
// batch eligibility it could in principle keep.

void CacheKernel::NoteSharedFrameInsert(uint32_t pv_index) {
  const MemMapEntry& rec = pmap_.record(pv_index);
  AddressSpaceObject* space = spaces_.SlotAt(rec.pv_space_slot());
  if (rec.pv_message()) {
    space->message_maps++;
  }
  uint32_t count = 0;
  uint32_t other = kNilRecord;
  for (uint32_t cur = pmap_.FindFirst(rec.pv_frame()); cur != kNilRecord;
       cur = pmap_.NextWithKey(cur)) {
    if (pmap_.record(cur).type() != RecordType::kPhysToVirt) {
      continue;
    }
    ++count;
    if (cur != pv_index) {
      other = cur;
    }
  }
  if (count == 2) {
    space->shared_frame_refs++;
    spaces_.SlotAt(pmap_.record(other).pv_space_slot())->shared_frame_refs++;
  } else if (count > 2) {
    space->shared_frame_refs++;
  }
}

void CacheKernel::NoteSharedFrameRemove(uint32_t pv_index) {
  const MemMapEntry& rec = pmap_.record(pv_index);
  AddressSpaceObject* space = spaces_.SlotAt(rec.pv_space_slot());
  if (rec.pv_message() && space->message_maps > 0) {
    space->message_maps--;
  }
  uint32_t count = 0;
  uint32_t other = kNilRecord;
  for (uint32_t cur = pmap_.FindFirst(rec.pv_frame()); cur != kNilRecord;
       cur = pmap_.NextWithKey(cur)) {
    if (pmap_.record(cur).type() != RecordType::kPhysToVirt) {
      continue;
    }
    ++count;
    if (cur != pv_index) {
      other = cur;
    }
  }
  if (count == 2) {
    if (space->shared_frame_refs > 0) {
      space->shared_frame_refs--;
    }
    AddressSpaceObject* peer = spaces_.SlotAt(pmap_.record(other).pv_space_slot());
    if (peer->shared_frame_refs > 0) {
      peer->shared_frame_refs--;
    }
  } else if (count > 2 && space->shared_frame_refs > 0) {
    space->shared_frame_refs--;
  }
}

void CacheKernel::UnloadThreadInternal(ThreadObject* thread, cksim::Cpu& cpu, UnloadCause cause) {
  const cksim::CostModel& cost = machine_.cost();
  KernelObject* owner = kernels_.SlotAt(thread->kernel_slot);
  AddressSpaceObject* space = spaces_.SlotAt(thread->space_slot);

  // Detach from the processor / queues.
  if (thread->state == ThreadState::kRunning) {
    cksim::Cpu& target = machine_.cpu(thread->cpu);
    if (CurrentOn(target) == thread) {
      target.current_thread = nullptr;
      cpu.Advance(cost.context_save);
    }
  }
  if (thread->ready_node.linked()) {
    Dequeue(thread);
  }
  RemoveSignalRecordsForThread(thread, cpu);
  for (uint32_t c = 0; c < machine_.cpu_count(); ++c) {
    machine_.cpu(c).reverse_tlb().InvalidateThread(threads_.IdOf(thread).Packed());
  }

  ThreadWriteback record;
  record.cookie = thread->cookie;
  record.space_cookie = space->cookie;
  record.context = thread->vm;
  record.priority = thread->priority;
  record.was_blocked = thread->state == ThreadState::kBlocked;
  record.cpu_consumed = thread->cpu_consumed;

  if (thread->locked) {
    uint32_t t = static_cast<uint32_t>(ObjectType::kThread);
    if (owner->locked_count[t] > 0) {
      owner->locked_count[t]--;
    }
  }
  space->threads.Remove(thread);
  owner->thread_count--;
  threads_.Release(thread);
  cpu.Advance(cost.context_save + cost.list_op);

  if (cause != UnloadCause::kDiscard) {
    cpu.Advance(cost.writeback_record + cost.mem_word * (sizeof(ThreadObject) / 4 / 2));
    uint32_t t = static_cast<uint32_t>(ObjectType::kThread);
    if (cause == UnloadCause::kExplicit) {
      stats_.explicit_unloads[t]++;
      Tenant(kernels_.SlotOf(owner)).explicit_unloads[t]++;
    } else {
      stats_.writebacks[t]++;
      Tenant(kernels_.SlotOf(owner)).writebacks[t]++;
    }
    CK_TRACE(Ring(cpu), obs::EventType::kObjectWriteback, cpu.clock(),
             static_cast<uint32_t>(ObjectType::kThread), record.cookie);
    CkApi api(*this, IdOfKernel(owner), cpu);
    owner->handlers->OnThreadWriteback(record, api);
  }
}

void CacheKernel::FreeSpaceTables(AddressSpaceObject* space) {
  cksim::PhysicalMemory& mem = machine_.memory();
  for (uint32_t i1 = 0; i1 < cksim::kL1Entries; ++i1) {
    uint32_t l1 = mem.ReadWord(space->root_table + i1 * 4);
    if (!cksim::PteValid(l1)) {
      continue;
    }
    PhysAddr l2_table = cksim::PteAddress(l1);
    for (uint32_t i2 = 0; i2 < cksim::kL2Entries; ++i2) {
      uint32_t l2 = mem.ReadWord(l2_table + i2 * 4);
      if (cksim::PteValid(l2)) {
        table_arena_.Free(cksim::PteAddress(l2), cksim::kL3TableBytes);
      }
    }
    table_arena_.Free(l2_table, cksim::kL2TableBytes);
  }
  table_arena_.Free(space->root_table, cksim::kL1TableBytes);
  space->root_table = 0;
}

void CacheKernel::UnloadSpaceInternal(AddressSpaceObject* space, cksim::Cpu& cpu,
                                      UnloadCause cause) {
  const cksim::CostModel& cost = machine_.cost();
  KernelObject* owner = kernels_.SlotAt(space->kernel_slot);
  uint32_t space_slot = spaces_.SlotOf(space);

  // "Before an address space object is written back, all the page mappings
  // in the address space and all the associated threads are written back."
  while (ThreadObject* t = space->threads.Front()) {
    UnloadThreadInternal(t, cpu, CascadeCause(cause));
  }

  // Walk the page tables to find every loaded mapping of this space.
  cksim::PhysicalMemory& mem = machine_.memory();
  for (uint32_t i1 = 0; i1 < cksim::kL1Entries && space->mapping_count > 0; ++i1) {
    uint32_t l1 = mem.ReadWord(space->root_table + i1 * 4);
    if (!cksim::PteValid(l1)) {
      continue;
    }
    for (uint32_t i2 = 0; i2 < cksim::kL2Entries && space->mapping_count > 0; ++i2) {
      uint32_t l2 = mem.ReadWord(cksim::PteAddress(l1) + i2 * 4);
      if (!cksim::PteValid(l2)) {
        continue;
      }
      for (uint32_t i3 = 0; i3 < cksim::kL3Entries && space->mapping_count > 0; ++i3) {
        uint32_t leaf = mem.ReadWord(cksim::PteAddress(l2) + i3 * 4);
        if (!cksim::PteValid(leaf)) {
          continue;
        }
        VirtAddr vaddr = (i1 << 25) | (i2 << 18) | (i3 << cksim::kPageShift);
        uint32_t pv = pmap_.FindPv(cksim::PageFrame(cksim::PteAddress(leaf)), space_slot, vaddr);
        if (pv != kNilRecord) {
          UnloadPvRecord(pv, cpu, CascadeCause(cause));
        } else {
          mem.WriteWord(cksim::PteAddress(l2) + i3 * 4, 0);
        }
      }
    }
  }

  FreeSpaceTables(space);
  for (uint32_t c = 0; c < machine_.cpu_count(); ++c) {
    machine_.cpu(c).mmu().tlb().FlushAsid(static_cast<uint16_t>(space_slot));
    cpu.Advance(cost.tlb_flush_asid);
  }

  SpaceWriteback record;
  record.cookie = space->cookie;
  if (space->locked) {
    uint32_t t = static_cast<uint32_t>(ObjectType::kSpace);
    if (owner->locked_count[t] > 0) {
      owner->locked_count[t]--;
    }
  }
  owner->space_count--;
  spaces_.Release(space);
  cpu.Advance(cost.descriptor_init);

  if (cause != UnloadCause::kDiscard) {
    cpu.Advance(cost.writeback_record);
    uint32_t t = static_cast<uint32_t>(ObjectType::kSpace);
    if (cause == UnloadCause::kExplicit) {
      stats_.explicit_unloads[t]++;
      Tenant(kernels_.SlotOf(owner)).explicit_unloads[t]++;
    } else {
      stats_.writebacks[t]++;
      Tenant(kernels_.SlotOf(owner)).writebacks[t]++;
    }
    CK_TRACE(Ring(cpu), obs::EventType::kObjectWriteback, cpu.clock(),
             static_cast<uint32_t>(ObjectType::kSpace), record.cookie);
    CkApi api(*this, IdOfKernel(owner), cpu);
    owner->handlers->OnSpaceWriteback(record, api);
  }
}

void CacheKernel::UnloadKernelInternal(KernelObject* kernel, cksim::Cpu& cpu, UnloadCause cause) {
  const cksim::CostModel& cost = machine_.cost();
  uint32_t kernel_slot = kernels_.SlotOf(kernel);

  // Unload every address space (and thereby thread and mapping) it owns.
  // "Unloading a kernel object is an expensive operation" -- this loop is
  // why (section 2.4).
  for (uint32_t slot = 0; slot < spaces_.capacity(); ++slot) {
    if (!spaces_.IsAllocated(slot)) {
      continue;
    }
    AddressSpaceObject* space = spaces_.SlotAt(slot);
    if (space->kernel_slot == kernel_slot) {
      UnloadSpaceInternal(space, cpu, CascadeCause(cause));
    }
  }

  KernelObject* manager = kernels_.SlotAt(kernel->manager_slot);
  KernelWriteback record;
  record.cookie = kernel->cookie;
  if (kernel->locked) {
    uint32_t t = static_cast<uint32_t>(ObjectType::kKernel);
    if (manager->locked_count[t] > 0) {
      manager->locked_count[t]--;
    }
  }
  kernels_.Release(kernel);
  cpu.Advance(cost.descriptor_init);

  if (cause != UnloadCause::kDiscard) {
    cpu.Advance(cost.writeback_record);
    uint32_t t = static_cast<uint32_t>(ObjectType::kKernel);
    // A kernel object's unload is charged to its own slot (captured before
    // the release; the slot index survives the descriptor).
    if (cause == UnloadCause::kExplicit) {
      stats_.explicit_unloads[t]++;
      Tenant(kernel_slot).explicit_unloads[t]++;
    } else {
      stats_.writebacks[t]++;
      Tenant(kernel_slot).writebacks[t]++;
    }
    CK_TRACE(Ring(cpu), obs::EventType::kObjectWriteback, cpu.clock(),
             static_cast<uint32_t>(ObjectType::kKernel), record.cookie);
    CkApi api(*this, IdOfKernel(manager), cpu);
    manager->handlers->OnKernelWriteback(record, api);
  }
}

// ---------------------------------------------------------------------------
// Page contents / physical access
// ---------------------------------------------------------------------------

bool CacheKernel::CheckPhysicalAccess(KernelObject* kernel, PhysAddr addr, uint32_t len,
                                      bool write) {
  if (!machine_.memory().Contains(addr, len)) {
    return false;
  }
  for (PhysAddr a = addr & ~(cksim::kPageGroupBytes - 1); a < addr + len;
       a += cksim::kPageGroupBytes) {
    if (!kernel->AllowsPhysical(a, write)) {
      return false;
    }
  }
  return true;
}

CkStatus CacheKernel::CopyPage(KernelId caller, cksim::Cpu& cpu, PhysAddr dst, PhysAddr src) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* k = GetKernel(caller);
  if (k == nullptr) {
    return CkStatus::kStale;
  }
  if ((dst & cksim::kPageOffsetMask) != 0 || (src & cksim::kPageOffsetMask) != 0 ||
      !CheckPhysicalAccess(k, dst, cksim::kPageSize, true) ||
      !CheckPhysicalAccess(k, src, cksim::kPageSize, false)) {
    return CkStatus::kDenied;
  }
  std::vector<uint8_t> buf(cksim::kPageSize);
  machine_.memory().Read(src, buf.data(), cksim::kPageSize);
  machine_.memory().Write(dst, buf.data(), cksim::kPageSize);
  cpu.Advance(cost.cache_line_fill * (cksim::kPageSize / 32));  // line-at-a-time copy
  cpu.Advance(TierSlowTouchCycles(src, cksim::kPageSize) +
              TierSlowTouchCycles(dst, cksim::kPageSize));
  cpu.Advance(cost.trap_exit);
  return CkStatus::kOk;
}

CkStatus CacheKernel::ZeroPage(KernelId caller, cksim::Cpu& cpu, PhysAddr dst) {
  const cksim::CostModel& cost = machine_.cost();
  cpu.Advance(cost.trap_entry + cost.call_gate);
  KernelObject* k = GetKernel(caller);
  if (k == nullptr) {
    return CkStatus::kStale;
  }
  if ((dst & cksim::kPageOffsetMask) != 0 ||
      !CheckPhysicalAccess(k, dst, cksim::kPageSize, true)) {
    return CkStatus::kDenied;
  }
  machine_.memory().Zero(dst, cksim::kPageSize);
  cpu.Advance(cost.mem_word * (cksim::kPageSize / 8));  // burst zeroing
  cpu.Advance(TierSlowTouchCycles(dst, cksim::kPageSize));
  cpu.Advance(cost.trap_exit);
  return CkStatus::kOk;
}

CkStatus CacheKernel::WritePhys(KernelId caller, cksim::Cpu& cpu, PhysAddr addr, const void* data,
                                uint32_t len) {
  const cksim::CostModel& cost = machine_.cost();
  KernelObject* k = GetKernel(caller);
  if (k == nullptr) {
    return CkStatus::kStale;
  }
  if (!CheckPhysicalAccess(k, addr, len, true)) {
    return CkStatus::kDenied;
  }
  machine_.memory().Write(addr, data, len);
  cpu.Advance(cost.mem_word * ((len + 3) / 4) + TierSlowTouchCycles(addr, len));
  return CkStatus::kOk;
}

CkStatus CacheKernel::ReadPhys(KernelId caller, cksim::Cpu& cpu, PhysAddr addr, void* out,
                               uint32_t len) {
  const cksim::CostModel& cost = machine_.cost();
  KernelObject* k = GetKernel(caller);
  if (k == nullptr) {
    return CkStatus::kStale;
  }
  if (!CheckPhysicalAccess(k, addr, len, false)) {
    return CkStatus::kDenied;
  }
  machine_.memory().Read(addr, out, len);
  cpu.Advance(cost.mem_word * ((len + 3) / 4) + TierSlowTouchCycles(addr, len));
  return CkStatus::kOk;
}

void CacheKernel::MarkFrameRemote(uint32_t pframe, bool remote) {
  // Frames beyond local memory can be marked (a peer node's address) but can
  // never be reached by a local translation; the bitmap spills them into its
  // sparse side, away from the fast path's dense probe region.
  remote_frames_.Assign(pframe, remote);
}

void CacheKernel::ScheduleAppEvent(cksim::Cycles at, KernelId kernel,
                                   std::function<void(CkApi&)> fn) {
  AppEvent event{at, kernel.id, std::move(fn)};
  auto it = app_events_.begin();
  while (it != app_events_.end() && it->at <= at) {
    ++it;
  }
  app_events_.insert(it, std::move(event));
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint32_t CacheKernel::loaded_count(ObjectType type) const {
  switch (type) {
    case ObjectType::kKernel:
      return kernels_.in_use();
    case ObjectType::kSpace:
      return spaces_.in_use();
    case ObjectType::kThread:
      return threads_.in_use();
    case ObjectType::kMapping:
      // Only pv records are cached mapping objects; signal/cow annotation
      // records occupy pool slots but are loaded/written back with their pv.
      return pmap_.loaded();
  }
  return 0;
}

std::array<uint32_t, kObjectTypeCount> CacheKernel::LoadedCountsFor(KernelId kernel) {
  std::array<uint32_t, kObjectTypeCount> counts{};
  KernelObject* k = GetKernel(kernel);
  if (k == nullptr) {
    return counts;
  }
  uint32_t slot = kernel.id.slot;
  counts[static_cast<uint32_t>(ObjectType::kKernel)] = 1;
  counts[static_cast<uint32_t>(ObjectType::kSpace)] = k->space_count;
  counts[static_cast<uint32_t>(ObjectType::kThread)] = k->thread_count;
  // Mappings are recorded per space; walk the pmap once and attribute each
  // pv record through its space's owning kernel.
  uint32_t mappings = 0;
  for (uint32_t i = 0; i < pmap_.capacity(); ++i) {
    const MemMapEntry& rec = pmap_.record(i);
    if (rec.type() != RecordType::kPhysToVirt) {
      continue;
    }
    uint32_t space_slot = rec.pv_space_slot();
    if (space_slot < spaces_.capacity() && spaces_.IsAllocated(space_slot) &&
        spaces_.SlotAt(space_slot)->kernel_slot == slot) {
      ++mappings;
    }
  }
  counts[static_cast<uint32_t>(ObjectType::kMapping)] = mappings;
  return counts;
}

uint32_t CacheKernel::capacity(ObjectType type) const {
  switch (type) {
    case ObjectType::kKernel:
      return kernels_.capacity();
    case ObjectType::kSpace:
      return spaces_.capacity();
    case ObjectType::kThread:
      return threads_.capacity();
    case ObjectType::kMapping:
      return pmap_.capacity();
  }
  return 0;
}

Result<ThreadState> CacheKernel::GetThreadState(ThreadId id) {
  ThreadObject* t = GetThread(id);
  if (t == nullptr) {
    return CkStatus::kStale;
  }
  return t->state;
}

Result<ckisa::VmContext> CacheKernel::GetThreadContext(ThreadId id) {
  ThreadObject* t = GetThread(id);
  if (t == nullptr) {
    return CkStatus::kStale;
  }
  return t->vm;
}

Result<cksim::Cycles> CacheKernel::GetThreadCpuConsumed(ThreadId id) {
  ThreadObject* t = GetThread(id);
  if (t == nullptr) {
    return CkStatus::kStale;
  }
  return t->cpu_consumed;
}

Result<uint32_t> CacheKernel::GetThreadCpu(ThreadId id) {
  ThreadObject* t = GetThread(id);
  if (t == nullptr) {
    return CkStatus::kStale;
  }
  return static_cast<uint32_t>(t->cpu);
}

void CacheKernel::FlushTlbPageAllCpus(uint16_t asid, uint32_t vpage, cksim::Cpu& cpu) {
  const cksim::CostModel& cost = machine_.cost();
  for (uint32_t c = 0; c < machine_.cpu_count(); ++c) {
    machine_.cpu(c).mmu().tlb().FlushPage(asid, vpage);
    cpu.Advance(c == cpu.id() ? cost.tlb_flush_entry : cost.tlb_flush_entry + cost.ipi);
  }
}

void CacheKernel::FlushReverseTlbFrameAllCpus(uint32_t pframe) {
  for (uint32_t c = 0; c < machine_.cpu_count(); ++c) {
    machine_.cpu(c).reverse_tlb().InvalidateFrame(pframe);
  }
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

void CacheKernel::RecordFaultTrace(const FaultTrace& trace) {
  using cksim::CostModel;
  fault_step_stats_.transfer.Add(CostModel::ToMicroseconds(trace.handler_start -
                                                           trace.trap_entry));
  fault_step_stats_.total.Add(CostModel::ToMicroseconds(trace.resumed - trace.trap_entry));
  if (trace.mapping_loaded != 0) {
    // Faults resolved without a mapping load (e.g. the app kernel chose to
    // block or kill the thread) have no step-4 stamp; only the combined
    // transfer/total distributions see them.
    fault_step_stats_.handle_load.Add(
        CostModel::ToMicroseconds(trace.mapping_loaded - trace.handler_start));
    fault_step_stats_.resume.Add(CostModel::ToMicroseconds(trace.resumed -
                                                           trace.mapping_loaded));
  }

  uint32_t depth = config_.fault_history_depth;
  if (depth == 0) {
    return;
  }
  if (fault_history_.size() < depth) {
    fault_history_.push_back(trace);
  } else {
    fault_history_[fault_history_pushed_ % depth] = trace;
  }
  fault_history_pushed_++;
}

std::vector<FaultTrace> CacheKernel::FaultHistory() const {
  std::vector<FaultTrace> out;
  uint32_t depth = config_.fault_history_depth;
  if (depth == 0 || fault_history_.empty()) {
    return out;
  }
  out.reserve(fault_history_.size());
  uint64_t oldest = fault_history_pushed_ > fault_history_.size()
                        ? fault_history_pushed_ - fault_history_.size()
                        : 0;
  for (uint64_t i = oldest; i < fault_history_pushed_; ++i) {
    out.push_back(fault_history_[i % depth]);
  }
  return out;
}

void CacheKernel::RegisterMetrics(obs::Registry& registry) {
  static const char* const kTypeNames[kObjectTypeCount] = {"kernel", "space", "thread",
                                                           "mapping"};
  const CkStats* s = &stats_;
  for (uint32_t t = 0; t < kObjectTypeCount; ++t) {
    std::string type = kTypeNames[t];
    registry.AddCounter("ck.loads." + type, [s, t] { return s->loads[t]; });
    registry.AddCounter("ck.writebacks." + type, [s, t] { return s->writebacks[t]; });
    registry.AddCounter("ck.reclamations." + type, [s, t] { return s->reclamations[t]; });
    registry.AddCounter("ck.reclaim.scan_steps." + type,
                        [s, t] { return s->reclaim_scan_steps[t]; });
    registry.AddCounter("ck.explicit_unloads." + type,
                        [s, t] { return s->explicit_unloads[t]; });
  }
  registry.AddCounter("ck.load_failures", [s] { return s->load_failures; });
  registry.AddCounter("ck.faults_forwarded", [s] { return s->faults_forwarded; });
  registry.AddCounter("ck.traps_forwarded", [s] { return s->traps_forwarded; });
  registry.AddCounter("ck.signals.fast", [s] { return s->signals_delivered_fast; });
  registry.AddCounter("ck.signals.slow", [s] { return s->signals_delivered_slow; });
  registry.AddCounter("ck.signals.queued", [s] { return s->signals_queued; });
  registry.AddCounter("ck.signals.dropped", [s] { return s->signals_dropped; });
  registry.AddCounter("ck.consistency_faults", [s] { return s->consistency_faults; });
  registry.AddCounter("ck.exec.trace_hits", [s] { return s->exec_trace_hits; });
  registry.AddCounter("ck.exec.trace_misses", [s] { return s->exec_trace_misses; });
  registry.AddCounter("ck.exec.trace_invalidations",
                      [s] { return s->exec_trace_invalidations; });
  registry.AddCounter("ck.exec.trace_builds", [s] { return s->exec_trace_builds; });
  registry.AddCounter("ck.sched.context_switches", [s] { return s->context_switches; });
  registry.AddCounter("ck.sched.preemptions", [s] { return s->preemptions; });
  registry.AddCounter("ck.sched.idle_turns", [s] { return s->idle_turns; });
  registry.AddCounter("ck.sched.quota_degradations", [s] { return s->quota_degradations; });
  registry.AddCounter("ck.stale_id_errors", [s] { return s->stale_id_errors; });
  registry.AddCounter("ck.tier.admissions", [s] { return s->tier_admissions; });
  registry.AddCounter("ck.tier.demotions", [s] { return s->tier_demotions; });
  registry.AddCounter("ck.tier.promotions", [s] { return s->tier_promotions; });
  registry.AddCounter("ck.tier.evictions", [s] { return s->tier_evictions; });
  registry.AddCounter("ck.tier.release_dram", [s] { return s->tier_release_dram; });
  registry.AddCounter("ck.tier.release_slow", [s] { return s->tier_release_slow; });
  registry.AddCounter("ck.tier.scan_steps", [s] { return s->tier_scan_steps; });
  const cksim::PhysicalMemory* pm = &machine_.memory();
  registry.AddCounter("ck.tier.dram_count",
                      [pm] { return pm->tier_count(cksim::MemTier::kDram); });
  registry.AddCounter("ck.tier.slow_count",
                      [pm] { return pm->tier_count(cksim::MemTier::kSlow); });

  cksim::Machine* m = &machine_;
  for (uint32_t c = 0; c < machine_.cpu_count(); ++c) {
    std::string cpu = std::to_string(c);
    registry.AddCounter("hw.tlb.hits.cpu" + cpu,
                        [m, c] { return m->cpu(c).mmu().tlb().hits(); });
    registry.AddCounter("hw.tlb.misses.cpu" + cpu,
                        [m, c] { return m->cpu(c).mmu().tlb().misses(); });
  }

  // Machine-level file-service counters: sums of the per-tenant fs_* fields
  // (the fs layer charges per kernel via ChargeFs, so the machine totals are
  // derived, and slot-sum conservation holds by construction).
  const std::vector<CostAccount>* fs_tenants = &tenant_;
  auto fs_total = [fs_tenants](uint64_t CostAccount::*field) {
    uint64_t total = 0;
    for (const CostAccount& a : *fs_tenants) {
      total += a.*field;
    }
    return total;
  };
  registry.AddCounter("ck.fs.hits", [fs_total] { return fs_total(&CostAccount::fs_hits); });
  registry.AddCounter("ck.fs.misses", [fs_total] { return fs_total(&CostAccount::fs_misses); });
  registry.AddCounter("ck.fs.readahead_issued",
                      [fs_total] { return fs_total(&CostAccount::fs_readahead_issued); });
  registry.AddCounter("ck.fs.readahead_useful",
                      [fs_total] { return fs_total(&CostAccount::fs_readahead_useful); });
  registry.AddCounter("ck.fs.invalidations",
                      [fs_total] { return fs_total(&CostAccount::fs_invalidations); });

  const FaultStepStats* f = &fault_step_stats_;
  registry.AddHistogram("ck.fault_us.transfer", [f] { return f->transfer; });
  registry.AddHistogram("ck.fault_us.handle_load", [f] { return f->handle_load; });
  registry.AddHistogram("ck.fault_us.resume", [f] { return f->resume; });
  registry.AddHistogram("ck.fault_us.total", [f] { return f->total; });

  // Per-kernel cost attribution, one counter family per kernel slot
  // (ck.tenant.<slot>.*). Summing a family across slots reproduces the
  // matching machine-level ck.* counter. reclaim_scan_steps/loads/... are
  // summed over object types here; the per-type split is available through
  // tenant_accounts() for tests.
  const std::vector<CostAccount>* tenants = &tenant_;
  for (uint32_t slot = 0; slot < config_.kernel_slots; ++slot) {
    std::string prefix = "ck.tenant." + std::to_string(slot) + ".";
    auto sum = [tenants, slot](const uint64_t(CostAccount::*field)[kObjectTypeCount]) {
      const CostAccount& a = (*tenants)[slot];
      uint64_t total = 0;
      for (uint32_t t = 0; t < kObjectTypeCount; ++t) {
        total += (a.*field)[t];
      }
      return total;
    };
    registry.AddCounter(prefix + "loads", [sum] { return sum(&CostAccount::loads); });
    registry.AddCounter(prefix + "writebacks", [sum] { return sum(&CostAccount::writebacks); });
    registry.AddCounter(prefix + "explicit_unloads",
                        [sum] { return sum(&CostAccount::explicit_unloads); });
    registry.AddCounter(prefix + "reclaim_scan_steps",
                        [sum] { return sum(&CostAccount::reclaim_scan_steps); });
    registry.AddCounter(prefix + "guest_instructions",
                        [tenants, slot] { return (*tenants)[slot].guest_instructions; });
    registry.AddCounter(prefix + "guest_cycles",
                        [tenants, slot] { return (*tenants)[slot].guest_cycles; });
    registry.AddCounter(prefix + "faults",
                        [tenants, slot] { return (*tenants)[slot].faults_forwarded; });
    registry.AddCounter(prefix + "prof_samples",
                        [tenants, slot] { return (*tenants)[slot].prof_samples; });
    registry.AddCounter(prefix + "trace_hits",
                        [tenants, slot] { return (*tenants)[slot].exec_trace_hits; });
    registry.AddCounter(prefix + "trace_misses",
                        [tenants, slot] { return (*tenants)[slot].exec_trace_misses; });
    registry.AddCounter(prefix + "trace_invalidations",
                        [tenants, slot] { return (*tenants)[slot].exec_trace_invalidations; });
    registry.AddCounter(prefix + "trace_builds",
                        [tenants, slot] { return (*tenants)[slot].exec_trace_builds; });
    registry.AddCounter(prefix + "fs_hits",
                        [tenants, slot] { return (*tenants)[slot].fs_hits; });
    registry.AddCounter(prefix + "fs_misses",
                        [tenants, slot] { return (*tenants)[slot].fs_misses; });
    registry.AddCounter(prefix + "fs_readahead_issued",
                        [tenants, slot] { return (*tenants)[slot].fs_readahead_issued; });
    registry.AddCounter(prefix + "fs_readahead_useful",
                        [tenants, slot] { return (*tenants)[slot].fs_readahead_useful; });
    registry.AddCounter(prefix + "fs_invalidations",
                        [tenants, slot] { return (*tenants)[slot].fs_invalidations; });
    registry.AddCounter(prefix + "tier_admissions",
                        [tenants, slot] { return (*tenants)[slot].tier_admissions; });
    registry.AddCounter(prefix + "tier_demotions",
                        [tenants, slot] { return (*tenants)[slot].tier_demotions; });
    registry.AddCounter(prefix + "tier_promotions",
                        [tenants, slot] { return (*tenants)[slot].tier_promotions; });
    registry.AddCounter(prefix + "tier_evictions",
                        [tenants, slot] { return (*tenants)[slot].tier_evictions; });
  }
}

void CacheKernel::set_profile_period(cksim::Cycles period) {
  knobs_.profile_period = period;
  for (uint32_t c = 0; c < machine_.cpu_count(); ++c) {
    samplers_[c].Arm(machine_.cpu(c).clock(), period);
  }
}

void CacheKernel::ChargeFs(KernelId kernel, FsCounter counter, uint64_t count) {
  uint32_t slot = kernel.id.slot;
  if (slot >= tenant_.size()) {
    return;
  }
  CostAccount& account = Tenant(slot);
  switch (counter) {
    case FsCounter::kHit:
      account.fs_hits += count;
      break;
    case FsCounter::kMiss:
      account.fs_misses += count;
      break;
    case FsCounter::kReadaheadIssued:
      account.fs_readahead_issued += count;
      break;
    case FsCounter::kReadaheadUseful:
      account.fs_readahead_useful += count;
      break;
    case FsCounter::kInvalidation:
      account.fs_invalidations += count;
      break;
  }
}

void CacheKernel::RecordPcSample(uint32_t kernel_slot, uint32_t pc, cksim::Cpu& cpu) {
  profile_pcs_[kernel_slot][pc]++;
  profile_samples_total_++;
  Tenant(kernel_slot).prof_samples++;
  CK_TRACE(Ring(cpu), obs::EventType::kProfSample, cpu.clock(),
           static_cast<uint16_t>(kernel_slot), pc);
}

}  // namespace ck

// Structural self-check used by the property tests: verifies that every
// cached object's dependency chain (Figure 6) is intact and that the three
// views of the mapping state -- page tables, physical memory map, TLBs -- can
// only disagree in the allowed direction (a TLB entry may be absent, never
// wrong; this is enforced by flush-before-remove, which the storm tests
// hammer).

#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/ck/cache_kernel.h"

namespace ck {

std::vector<std::string> CacheKernel::ValidateInvariants() {
  std::vector<std::string> violations;
  auto fail = [&](const std::string& message) { violations.push_back(message); };
  cksim::PhysicalMemory& mem = machine_.memory();

  // --- physical memory map records ---
  std::vector<uint32_t> pv_count_per_space(spaces_.capacity(), 0);
  // Restore remaps frames; a bad translation map would surface here as a pv
  // record pointing outside local memory or as two records claiming the same
  // (space, vaddr) translation.
  const uint32_t local_frames = cksim::PageFrame(static_cast<cksim::PhysAddr>(mem.size()));
  std::set<std::pair<uint32_t, cksim::VirtAddr>> pv_seen;
  uint32_t signal_records = 0;
  for (uint32_t i = 0; i < pmap_.capacity(); ++i) {
    const MemMapEntry& rec = pmap_.record(i);
    switch (rec.type()) {
      case RecordType::kFree:
        break;
      case RecordType::kPhysToVirt: {
        uint32_t slot = rec.pv_space_slot();
        if (slot >= spaces_.capacity() || !spaces_.IsAllocated(slot)) {
          fail("pv record " + std::to_string(i) + " names unallocated space slot " +
               std::to_string(slot));
          break;
        }
        if (rec.pv_frame() >= local_frames && !remote_frames_.Test(rec.pv_frame())) {
          std::ostringstream os;
          os << "pv record " << i << " frame " << rec.pv_frame()
             << " outside local memory (bad restore frame remap?)";
          fail(os.str());
        }
        if (!pv_seen.insert({slot, rec.pv_vaddr()}).second) {
          std::ostringstream os;
          os << "duplicate pv record for space slot " << slot << " vaddr " << std::hex
             << rec.pv_vaddr();
          fail(os.str());
        }
        pv_count_per_space[slot]++;
        AddressSpaceObject* space = spaces_.SlotAt(slot);
        // The leaf PTE must exist, be valid, and point at the record's frame.
        cksim::PhysAddr l1_slot = space->root_table + cksim::L1Index(rec.pv_vaddr()) * 4;
        uint32_t l1 = mem.ReadWord(l1_slot);
        if (!cksim::PteValid(l1)) {
          fail("pv record with no L1 entry");
          break;
        }
        uint32_t l2 = mem.ReadWord(cksim::PteAddress(l1) + cksim::L2Index(rec.pv_vaddr()) * 4);
        if (!cksim::PteValid(l2)) {
          fail("pv record with no L2 entry");
          break;
        }
        uint32_t leaf =
            mem.ReadWord(cksim::PteAddress(l2) + cksim::L3Index(rec.pv_vaddr()) * 4);
        if (!cksim::PteValid(leaf)) {
          fail("pv record with invalid leaf PTE");
          break;
        }
        if (cksim::PageFrame(cksim::PteAddress(leaf)) != rec.pv_frame()) {
          fail("pv record frame disagrees with PTE");
        }
        break;
      }
      case RecordType::kSignal: {
        ++signal_records;
        uint32_t pv = rec.key;
        if (pv >= pmap_.capacity() || pmap_.record(pv).type() != RecordType::kPhysToVirt) {
          fail("signal record keyed by non-pv record");
          break;
        }
        uint32_t slot = rec.signal_thread_slot();
        if (slot >= threads_.capacity() || !threads_.IsAllocated(slot)) {
          fail("signal record names unallocated thread (dangling Fig. 6 dependency)");
          break;
        }
        ThreadObject* t = threads_.SlotAt(slot);
        if ((threads_.IdOf(t).generation & 0xffffffu) != rec.signal_thread_gen24()) {
          fail("signal record names a stale thread generation");
        }
        break;
      }
      case RecordType::kCopyOnWrite: {
        uint32_t pv = rec.key;
        if (pv >= pmap_.capacity() || pmap_.record(pv).type() != RecordType::kPhysToVirt) {
          fail("cow record keyed by non-pv record");
        }
        break;
      }
    }
  }

  // --- address spaces ---
  for (uint32_t slot = 0; slot < spaces_.capacity(); ++slot) {
    if (!spaces_.IsAllocated(slot)) {
      continue;
    }
    AddressSpaceObject* space = spaces_.SlotAt(slot);
    if (space->root_table == 0) {
      fail("loaded space without a root page table");
    }
    if (space->kernel_slot >= kernels_.capacity() ||
        !kernels_.IsAllocated(space->kernel_slot)) {
      fail("space owned by unallocated kernel (Fig. 6 violation)");
    }
    if (space->mapping_count != pv_count_per_space[slot]) {
      std::ostringstream os;
      os << "space slot " << slot << " mapping_count=" << space->mapping_count
         << " but pmap holds " << pv_count_per_space[slot];
      fail(os.str());
    }
  }

  // --- threads ---
  std::vector<uint32_t> threads_per_kernel(kernels_.capacity(), 0);
  std::vector<uint32_t> spaces_per_kernel(kernels_.capacity(), 0);
  uint32_t total_chained_signals = 0;
  for (uint32_t slot = 0; slot < threads_.capacity(); ++slot) {
    if (!threads_.IsAllocated(slot)) {
      continue;
    }
    ThreadObject* t = threads_.SlotAt(slot);
    AddressSpaceObject* space = spaces_.Lookup(ckbase::PoolId{t->space_slot, t->space_gen});
    if (space == nullptr) {
      fail("loaded thread references an unloaded space (Fig. 6 violation)");
      continue;
    }
    threads_per_kernel[t->kernel_slot]++;
    bool queued = t->ready_node.linked();
    if (t->state == ThreadState::kReady && !queued) {
      fail("ready thread not on a ready queue");
    }
    if (t->state != ThreadState::kReady && queued) {
      fail("non-ready thread sitting on a ready queue");
    }
    if (t->state == ThreadState::kRunning) {
      cksim::Cpu& cpu = machine_.cpu(t->cpu);
      if (CurrentOn(cpu) != t) {
        fail("running thread is not current on its processor");
      }
    }
    if (t->signal_count > ThreadObject::kSignalQueueDepth) {
      fail("signal queue count exceeds depth");
    }

    // The signal-registration chain must reach exactly signal_reg_count
    // records, each a kSignal record naming this (slot, generation). Every
    // signal record is reachable from some chain (the total cross-check
    // below), so O(registrations) teardown frees exactly the records the
    // arena scan used to find.
    uint32_t gen24 = threads_.IdOf(t).generation & 0xffffffu;
    uint32_t chain_len = 0;
    for (uint32_t cur = signal_reg_head_[slot];
         cur != kNilSignalChain && chain_len <= pmap_.capacity();
         cur = pmap_.record(cur).signal_next()) {
      const MemMapEntry& rec = pmap_.record(cur);
      if (cur >= pmap_.capacity() || rec.type() != RecordType::kSignal) {
        fail("signal chain entry is not a live signal record");
        break;
      }
      if (rec.signal_thread_slot() != slot || rec.signal_thread_gen24() != gen24) {
        fail("signal chain entry names a different thread");
        break;
      }
      ++chain_len;
    }
    if (chain_len > pmap_.capacity()) {
      fail("signal chain does not terminate (cycle)");
    } else if (chain_len != t->signal_reg_count) {
      fail("signal chain length disagrees with signal_reg_count");
    }
    total_chained_signals += chain_len;
  }
  if (total_chained_signals != signal_records) {
    fail("signal records not all reachable from a thread chain");
  }

  // --- kernels ---
  for (uint32_t slot = 0; slot < spaces_.capacity(); ++slot) {
    if (spaces_.IsAllocated(slot)) {
      spaces_per_kernel[spaces_.SlotAt(slot)->kernel_slot]++;
    }
  }
  for (uint32_t slot = 0; slot < kernels_.capacity(); ++slot) {
    if (!kernels_.IsAllocated(slot)) {
      continue;
    }
    KernelObject* k = kernels_.SlotAt(slot);
    if (k->space_count != spaces_per_kernel[slot]) {
      fail("kernel space_count mismatch");
    }
    if (k->thread_count != threads_per_kernel[slot]) {
      fail("kernel thread_count mismatch");
    }
    for (uint32_t type = 0; type < kObjectTypeCount; ++type) {
      if (k->locked_count[type] > k->locked_limit[type]) {
        fail("locked count exceeds limit");
      }
    }
  }

  // --- TLBs may only cache CURRENT translations ---
  // (Checked indirectly: flushes precede PTE clears, so a translated access
  // through any CPU must agree with the tables. Exhaustive TLB dumping is
  // not exposed by the hardware model, as on the real machine.)

  // --- ObjectCache accounting matches store occupancy ---
  // Every loaded descriptor carries a nonzero load stamp and every free slot
  // a zero one; drift would skew FIFO ages and the replacement bookkeeping.
  for (uint32_t slot = 0; slot < kernels_.capacity(); ++slot) {
    if (kernels_.IsAllocated(slot) != (kernels_.load_seq(slot) != 0)) {
      fail("kernel cache load stamp disagrees with pool occupancy");
    }
  }
  for (uint32_t slot = 0; slot < spaces_.capacity(); ++slot) {
    if (spaces_.IsAllocated(slot) != (spaces_.load_seq(slot) != 0)) {
      fail("space cache load stamp disagrees with pool occupancy");
    }
  }
  for (uint32_t slot = 0; slot < threads_.capacity(); ++slot) {
    if (threads_.IsAllocated(slot) != (threads_.load_seq(slot) != 0)) {
      fail("thread cache load stamp disagrees with pool occupancy");
    }
  }
  for (uint32_t i = 0; i < pmap_.capacity(); ++i) {
    bool is_pv = pmap_.record(i).type() == RecordType::kPhysToVirt;
    if (is_pv != (pmap_.load_seq(i) != 0)) {
      fail("mapping cache load stamp disagrees with pv occupancy");
    }
  }

  // --- tiered physical memory (docs/TIERING.md) ---
  // A frame is in exactly one tier; scanning the per-frame bytes must agree
  // with PhysicalMemory's per-tier counts, the counts must partition the
  // frame pool, and the frame-tier cache's load stamps must mark exactly the
  // tracked (DRAM or slow) frames.
  {
    uint32_t page_count = mem.page_count();
    uint32_t scanned[cksim::kMemTierCount] = {0, 0, 0};
    for (uint32_t f = 0; f < page_count; ++f) {
      uint8_t tier = static_cast<uint8_t>(mem.tier_of(f));
      if (tier >= cksim::kMemTierCount) {
        fail("frame " + std::to_string(f) + " has out-of-range tier value");
        continue;
      }
      scanned[tier]++;
      bool tracked = tier != static_cast<uint8_t>(cksim::MemTier::kNone);
      if (tracked != (frame_tiers_.load_seq(f) != 0)) {
        fail("frame-tier cache load stamp disagrees with tier residency for frame " +
             std::to_string(f));
      }
    }
    const char* const kTierNames[cksim::kMemTierCount] = {"none", "dram", "slow"};
    uint32_t counted_total = 0;
    for (uint32_t t = 0; t < cksim::kMemTierCount; ++t) {
      uint32_t counted = mem.tier_count(static_cast<cksim::MemTier>(t));
      counted_total += counted;
      if (scanned[t] != counted) {
        std::ostringstream os;
        os << "tier " << kTierNames[t] << " count " << counted << " disagrees with scan "
           << scanned[t];
        fail(os.str());
      }
    }
    if (counted_total != page_count) {
      fail("per-tier counts do not partition the frame pool");
    }
    if (TierEnabled() &&
        frame_tiers_.loaded() != mem.tier_count(cksim::MemTier::kDram) +
                                     mem.tier_count(cksim::MemTier::kSlow)) {
      fail("frame-tier cache loaded() disagrees with DRAM + slow counts");
    }
  }

  return violations;
}

}  // namespace ck

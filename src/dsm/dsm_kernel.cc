#include "src/dsm/dsm_kernel.h"

#include <cstring>

namespace ckdsm {

using ck::CkApi;
using ck::HandlerAction;
using ckbase::CkStatus;
using cksim::PhysAddr;
using cksim::VirtAddr;

DsmKernel::DsmKernel(ck::CacheKernel& ck, const DsmConfig& config)
    : ckapp::AppKernelBase("dsm", /*backing_pages=*/64), ck_(ck), config_(config) {}

DsmKernel::~DsmKernel() = default;

void DsmKernel::Setup(CkApi& api, ckapp::MessageChannel& requests_out,
                      ckapp::MessageChannel& replies_in) {
  space_index_ = CreateSpace(api, /*locked=*/true);
  owned_.assign(config_.pages, config_.initially_owner);
  fetching_.assign(config_.pages, false);
  fragments_pending_.assign(config_.pages, 0);
  waiters_.assign(config_.pages, {});

  // One local frame per shared page, mapped at the region address. A page
  // this node does not own starts marked remote, so the first access raises
  // a consistency fault instead of reading stale bytes.
  for (uint32_t page = 0; page < config_.pages; ++page) {
    PhysAddr frame = frames().Allocate();
    frames_.push_back(frame);
    api.ZeroPage(frame);
    DefineFrameRegion(space_index_, PageVaddr(page), 1, frame, /*writable=*/true,
                      /*message=*/false);
    EnsureMappingLoaded(api, space_index_, PageVaddr(page));
    if (!config_.initially_owner) {
      ck_.MarkFrameRemote(frame >> cksim::kPageShift, true);
    }
  }

  // One symmetric RPC endpoint: it serves the peer's fetches AND completes
  // our own, demultiplexing the interleaved reception ring by the reply bit.
  endpoint_ = std::make_unique<ckapp::RpcEndpoint>(
      requests_out, replies_in,
      [this](uint32_t op, const std::vector<uint8_t>& request, CkApi& server_api) {
        return Serve(op, request, server_api);
      });
  endpoint_thread_ = CreateNativeThread(api, space_index_, endpoint_.get(), /*priority=*/26,
                                        /*locked=*/true);
}

std::vector<uint8_t> DsmKernel::Serve(uint32_t op, const std::vector<uint8_t>& request,
                                      CkApi& api) {
  // A 4 KiB page plus headers does not fit one 4 KiB message slot, so a
  // fetch ships the page in two half-page fragments: request = {page, half}.
  // Ownership transfers on the first fragment: the local copy is invalidated
  // BEFORE the bytes leave, so a racing local access faults rather than
  // reading soon-to-be-stale data.
  if (op != kOpFetchPage || request.size() < 8) {
    return {};
  }
  uint32_t page, half;
  std::memcpy(&page, request.data(), 4);
  std::memcpy(&half, request.data() + 4, 4);
  if (page >= config_.pages || half > 1) {
    return {};
  }
  if (half == 0) {
    ck_.MarkFrameRemote(frames_[page] >> cksim::kPageShift, true);
    owned_[page] = false;
    stats_.invalidations++;
  }
  std::vector<uint8_t> bytes(kHalfPage);
  api.ReadPhys(frames_[page] + half * kHalfPage, bytes.data(), kHalfPage);
  return bytes;
}

void DsmKernel::InstallFragment(CkApi& api, uint32_t page, uint32_t half,
                                const std::vector<uint8_t>& bytes) {
  api.WritePhys(frames_[page] + half * kHalfPage, bytes.data(),
                static_cast<uint32_t>(std::min<size_t>(bytes.size(), kHalfPage)));
  fragments_pending_[page] &= ~(1u << half);
  if (fragments_pending_[page] != 0) {
    return;  // the other half is still in flight
  }
  ck_.MarkFrameRemote(frames_[page] >> cksim::kPageShift, false);
  owned_[page] = true;
  fetching_[page] = false;
  stats_.fetches_sent++;
  for (ck::ThreadId waiter : waiters_[page]) {
    api.ResumeThread(waiter);
  }
  waiters_[page].clear();
}

HandlerAction DsmKernel::OnConsistencyFault(const ck::FaultForward& fault, CkApi& api) {
  stats_.consistency_faults++;
  VirtAddr addr = fault.fault.address;
  if (addr < config_.region_base ||
      addr >= config_.region_base + config_.pages * cksim::kPageSize) {
    return OnIllegalAccess(fault, api);  // a genuinely failed module
  }
  uint32_t page = (addr - config_.region_base) / cksim::kPageSize;

  waiters_[page].push_back(fault.thread);
  if (!fetching_[page]) {
    fetching_[page] = true;
    fragments_pending_[page] = 0b11;
    for (uint32_t half = 0; half < 2; ++half) {
      std::vector<uint8_t> request(8);
      std::memcpy(request.data(), &page, 4);
      std::memcpy(request.data() + 4, &half, 4);
      uint32_t page_copy = page, half_copy = half;
      CkStatus status = endpoint_->Call(
          api, kOpFetchPage, request,
          [this, page_copy, half_copy](const std::vector<uint8_t>& reply, CkApi& later) {
            InstallFragment(later, page_copy, half_copy, reply);
          });
      if (status != CkStatus::kOk) {
        fetching_[page] = false;
        waiters_[page].clear();
        return OnIllegalAccess(fault, api);
      }
    }
  }
  // The thread re-executes the faulting access once the page arrives.
  return HandlerAction::kBlock;
}

}  // namespace ckdsm

// Distributed shared memory over consistency faults (section 2.1, footnote 1).
//
// "The consistency fault mechanism is used to implement a consistency
// protocol on a cache-line basis for distributed shared memory." The paper
// leaves the protocol to higher-level software ("explicit coordination
// between kernels ... is provided by higher-level software", section 3);
// this module is that software: a page-granular, single-writer *migratory*
// protocol between two application kernels on separate machines.
//
// Mechanism per node:
//   * the shared region's pages are backed by local frames;
//   * a page the node does NOT currently own has its frame marked remote, so
//     any access raises a consistency fault, which the Cache Kernel forwards
//     to this kernel's handler (the normal Figure 2 path);
//   * the handler blocks the faulting thread and issues a fetch RPC over the
//     fiber channel; the current owner invalidates its copy (marks its frame
//     remote) and replies with the page contents; the requester installs the
//     bytes, clears the remote mark, becomes owner and resumes the thread.
//
// The protocol is deliberately the simplest one that exercises the
// consistency-fault machinery end to end: exclusive ownership, migration on
// demand, no read sharing. tests/dsm_test.cc drives sequential ownership
// migration and ping-pong between two machines.

#ifndef SRC_DSM_DSM_KERNEL_H_
#define SRC_DSM_DSM_KERNEL_H_

#include <memory>
#include <vector>

#include "src/appkernel/channel.h"

namespace ckdsm {

inline constexpr uint32_t kOpFetchPage = 0x0d50;  // request: u32 page, u32 half
inline constexpr uint32_t kHalfPage = cksim::kPageSize / 2;

struct DsmConfig {
  uint32_t pages = 4;
  cksim::VirtAddr region_base = 0x48000000;
  bool initially_owner = false;  // exactly one node starts owning every page
};

struct DsmStats {
  uint64_t fetches_sent = 0;      // pages pulled from the peer
  uint64_t invalidations = 0;     // pages surrendered to the peer
  uint64_t consistency_faults = 0;
};

class DsmKernel : public ckapp::AppKernelBase {
 public:
  DsmKernel(ck::CacheKernel& ck, const DsmConfig& config);
  ~DsmKernel() override;

  // Allocates the region's frames, creates the RPC service threads, and
  // wires the two channels (already configured over the fiber-channel slots
  // by the caller, which knows the device layout).
  void Setup(ck::CkApi& api, ckapp::MessageChannel& requests_out,
             ckapp::MessageChannel& replies_in);

  // The endpoint thread that must receive signals for the inbound channel
  // (index into this kernel's thread table).
  uint32_t endpoint_thread() const { return endpoint_thread_; }
  ckapp::RpcEndpoint& endpoint() { return *endpoint_; }

  uint32_t space_index() const { return space_index_; }
  cksim::VirtAddr PageVaddr(uint32_t page) const {
    return config_.region_base + page * cksim::kPageSize;
  }
  bool OwnsPage(uint32_t page) const { return owned_[page]; }
  const DsmStats& dsm_stats() const { return stats_; }

  // Convenience for native worker threads of OTHER kernels is not supported:
  // DSM accesses must come from this kernel's threads so faults route here.
  // Workers are created via CreateNativeThread on this kernel as usual.

 protected:
  ck::HandlerAction OnConsistencyFault(const ck::FaultForward& fault, ck::CkApi& api) override;

 private:
  // The RPC service function: the peer asks for a page; surrender it.
  std::vector<uint8_t> Serve(uint32_t op, const std::vector<uint8_t>& request, ck::CkApi& api);

  void InstallFragment(ck::CkApi& api, uint32_t page, uint32_t half,
                       const std::vector<uint8_t>& bytes);

  ck::CacheKernel& ck_;
  DsmConfig config_;
  uint32_t space_index_ = 0;
  std::vector<cksim::PhysAddr> frames_;   // local frame per page
  std::vector<bool> owned_;
  std::vector<bool> fetching_;
  std::vector<uint8_t> fragments_pending_;  // bitmask of halves in flight
  std::vector<std::vector<ck::ThreadId>> waiters_;  // blocked on fetch

  std::unique_ptr<ckapp::RpcEndpoint> endpoint_;
  uint32_t endpoint_thread_ = 0;
  DsmStats stats_;
};

}  // namespace ckdsm

#endif  // SRC_DSM_DSM_KERNEL_H_

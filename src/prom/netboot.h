// PROM monitor: network boot and remote debugging (section 4).
//
// "The Cache Kernel code is burned into PROM on each MPM together with a
// conventional PROM monitor and network boot program. ... roughly 6000 lines
// (40 percent) is PROM monitor, remote debugging and booting support
// (including implementations of UDP, IP, ARP, RARP, and TFTP)."
//
// This module is that support, scaled to the simulated Ethernet:
//   * a RARP-like discovery exchange (a booting node broadcasts "whoami";
//     the boot server replies with its station number);
//   * a TFTP-like block transfer protocol (RRQ -> DATA/ACK ping-pong,
//     512-byte blocks, short block terminates);
//   * a PEEK/POKE remote-debug port into the node's physical memory.
//
// BootServer runs as a native thread of an application kernel on the server
// node and serves named images. PromClient runs on the booting node and
// drives discovery + fetch, handing the image bytes to a completion callback
// (the caller then assembles/executes it -- see tests/netboot_test.cc).
// Both sit directly on the Ethernet device's message regions, like every
// other user of memory-based messaging.

#ifndef SRC_PROM_NETBOOT_H_
#define SRC_PROM_NETBOOT_H_

#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/appkernel/app_kernel_base.h"
#include "src/sim/devices.h"

namespace ckprom {

// Wire protocol (inside the Ethernet payload, after the destination byte):
//   [0] kind  [1] src station  [2..3] arg (block number / port)  [4..] body
enum class PacketKind : uint8_t {
  kRarpRequest = 1,   // body: empty (broadcast)
  kRarpReply = 2,     // body: empty (src station IS the answer)
  kTftpRead = 3,      // body: image name (NUL-terminated)
  kTftpData = 4,      // arg: block number; body: block bytes (<512 = last)
  kTftpAck = 5,       // arg: block number
  kTftpError = 6,     // body: message
  kPeek = 7,          // body: u32 phys addr
  kPeekReply = 8,     // body: u32 value
  kPoke = 9,          // body: u32 phys addr, u32 value
  kPokeAck = 10,
};

inline constexpr uint32_t kTftpBlockSize = 512;

// Shared plumbing: wraps one Ethernet station's tx/rx regions mapped into an
// application kernel's space.
class Station {
 public:
  Station(ckapp::AppKernelBase& kernel, uint32_t space_index, cksim::EthernetDevice& device,
          cksim::VirtAddr tx_vbase, cksim::VirtAddr rx_vbase);

  // Map regions and prefault the receive ring; `signal_thread` gets the
  // inbound signals.
  ckbase::CkStatus Attach(ck::CkApi& api, uint32_t signal_thread);

  ckbase::CkStatus Send(ck::CkApi& api, uint8_t dest, PacketKind kind, uint16_t arg,
                        const void* body, uint32_t body_len);

  // Parse an inbound signal into (kind, src, arg, body). False if malformed.
  bool Read(ck::CkApi& api, cksim::VirtAddr signal_addr, PacketKind* kind, uint8_t* src,
            uint16_t* arg, std::vector<uint8_t>* body);

  uint8_t station() const { return device_.station(); }

 private:
  ckapp::AppKernelBase& kernel_;
  uint32_t space_index_;
  cksim::EthernetDevice& device_;
  cksim::VirtAddr tx_vbase_;
  cksim::VirtAddr rx_vbase_;
  uint32_t next_tx_ = 0;
};

// Serves named boot images and the PEEK/POKE debug port.
class BootServer : public ck::NativeProgram {
 public:
  BootServer(Station station) : station_(std::move(station)) {}

  void AddImage(const std::string& name, std::vector<uint8_t> bytes) {
    images_[name] = std::move(bytes);
  }

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    (void)ctx;
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  void OnSignal(cksim::VirtAddr addr, ck::NativeCtx& ctx) override;

  uint64_t boots_served() const { return boots_; }
  uint64_t blocks_sent() const { return blocks_; }

 private:
  struct Transfer {
    std::string name;
    uint32_t next_block = 1;
  };

  void SendBlock(ck::CkApi& api, uint8_t dest, const Transfer& transfer);

  Station station_;
  std::map<std::string, std::vector<uint8_t>> images_;
  std::map<uint8_t, Transfer> transfers_;  // by client station
  uint64_t boots_ = 0;
  uint64_t blocks_ = 0;
};

// Drives discovery + fetch from the booting node.
class PromClient : public ck::NativeProgram {
 public:
  using BootDone = std::function<void(const std::vector<uint8_t>& image, ck::CkApi& api)>;

  PromClient(Station station) : station_(std::move(station)) {}

  // Begin: broadcast RARP; on the reply, request `image_name` from the
  // responding server; on completion call `done`.
  ckbase::CkStatus Boot(ck::CkApi& api, const std::string& image_name, BootDone done);

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    (void)ctx;
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  void OnSignal(cksim::VirtAddr addr, ck::NativeCtx& ctx) override;

  // Remote-debug client side: peek/poke the PEER's physical memory through
  // its debug port (completions are asynchronous).
  ckbase::CkStatus Peek(ck::CkApi& api, uint8_t server, cksim::PhysAddr addr,
                        std::function<void(uint32_t)> done);
  ckbase::CkStatus Poke(ck::CkApi& api, uint8_t server, cksim::PhysAddr addr, uint32_t value);

  bool boot_complete() const { return boot_complete_; }
  uint8_t discovered_server() const { return server_; }

 private:
  Station station_;
  std::string image_name_;
  BootDone done_;
  std::vector<uint8_t> image_;
  uint32_t expected_block_ = 1;
  uint8_t server_ = 0;
  bool discovering_ = false;
  bool fetching_ = false;
  bool boot_complete_ = false;
  std::function<void(uint32_t)> peek_done_;
};

// The debug-port responder for a node that accepts remote PEEK/POKE (the
// "remote debugging" half of the PROM monitor). Runs on the debugged node.
class DebugPort : public ck::NativeProgram {
 public:
  DebugPort(Station station, cksim::PhysicalMemory& memory)
      : station_(std::move(station)), memory_(memory) {}

  ck::NativeOutcome Step(ck::NativeCtx& ctx) override {
    (void)ctx;
    ck::NativeOutcome outcome;
    outcome.action = ck::NativeOutcome::Action::kBlock;
    return outcome;
  }
  void OnSignal(cksim::VirtAddr addr, ck::NativeCtx& ctx) override;

  uint64_t peeks() const { return peeks_; }
  uint64_t pokes() const { return pokes_; }

 private:
  Station station_;
  cksim::PhysicalMemory& memory_;
  uint64_t peeks_ = 0;
  uint64_t pokes_ = 0;
};

// Boot-image serialization for CKVM programs: [u32 base][u32 words][words].
std::vector<uint8_t> SerializeProgram(const ckisa::Program& program);
bool DeserializeProgram(const std::vector<uint8_t>& bytes, ckisa::Program* program);

}  // namespace ckprom

#endif  // SRC_PROM_NETBOOT_H_

#include "src/prom/netboot.h"

namespace ckprom {

using ck::CkApi;
using ckbase::CkStatus;
using cksim::PhysAddr;
using cksim::VirtAddr;

namespace {
constexpr uint32_t kHeaderBytes = 4;  // kind, src, arg16
constexpr uint8_t kBroadcast = 0xff;
}  // namespace

// ---------------------------------------------------------------------------
// Station
// ---------------------------------------------------------------------------

Station::Station(ckapp::AppKernelBase& kernel, uint32_t space_index,
                 cksim::EthernetDevice& device, VirtAddr tx_vbase, VirtAddr rx_vbase)
    : kernel_(kernel),
      space_index_(space_index),
      device_(device),
      tx_vbase_(tx_vbase),
      rx_vbase_(rx_vbase) {}

CkStatus Station::Attach(CkApi& api, uint32_t signal_thread) {
  kernel_.DefineFrameRegion(space_index_, tx_vbase_, device_.tx_slot_count(), device_.tx_slot(0),
                            /*writable=*/true, /*message=*/true);
  kernel_.DefineFrameRegion(space_index_, rx_vbase_, device_.rx_slot_count(), device_.rx_slot(0),
                            /*writable=*/false, /*message=*/true, signal_thread);
  for (uint32_t i = 0; i < device_.rx_slot_count(); ++i) {
    CkStatus status =
        kernel_.EnsureMappingLoaded(api, space_index_, rx_vbase_ + i * cksim::kPageSize);
    if (status != CkStatus::kOk) {
      return status;
    }
  }
  return CkStatus::kOk;
}

CkStatus Station::Send(CkApi& api, uint8_t dest, PacketKind kind, uint16_t arg, const void* body,
                       uint32_t body_len) {
  // Ethernet payload: [dest][kind][src][arg16][body].
  std::vector<uint8_t> wire(1 + kHeaderBytes + body_len);
  wire[0] = dest;
  wire[1] = static_cast<uint8_t>(kind);
  wire[2] = device_.station();
  std::memcpy(wire.data() + 3, &arg, 2);
  if (body_len > 0) {
    std::memcpy(wire.data() + 1 + kHeaderBytes, body, body_len);
  }

  uint32_t slot = next_tx_++ % device_.tx_slot_count();
  PhysAddr frame = device_.tx_slot(slot);
  VirtAddr slot_vaddr = tx_vbase_ + slot * cksim::kPageSize;
  uint32_t len = static_cast<uint32_t>(wire.size());
  api.WritePhys(frame, &len, 4);
  api.WritePhys(frame + 4, wire.data(), len);
  CkStatus status = kernel_.EnsureMappingLoaded(api, space_index_, slot_vaddr);
  if (status != CkStatus::kOk) {
    return status;
  }
  return api.Signal(kernel_.space(space_index_).ck_id, slot_vaddr);
}

bool Station::Read(CkApi& api, VirtAddr signal_addr, PacketKind* kind, uint8_t* src,
                   uint16_t* arg, std::vector<uint8_t>* body) {
  if (signal_addr < rx_vbase_) {
    return false;
  }
  uint32_t slot = (signal_addr - rx_vbase_) / cksim::kPageSize;
  if (slot >= device_.rx_slot_count()) {
    return false;
  }
  PhysAddr frame = device_.rx_slot(slot);
  uint32_t len = 0;
  api.ReadPhys(frame, &len, 4);
  if (len < 1 + kHeaderBytes || len > cksim::kPageSize - 4) {
    return false;
  }
  std::vector<uint8_t> wire(len);
  api.ReadPhys(frame + 4, wire.data(), len);
  *kind = static_cast<PacketKind>(wire[1]);
  *src = wire[2];
  std::memcpy(arg, wire.data() + 3, 2);
  body->assign(wire.begin() + 1 + kHeaderBytes, wire.end());
  return true;
}

// ---------------------------------------------------------------------------
// BootServer
// ---------------------------------------------------------------------------

void BootServer::SendBlock(CkApi& api, uint8_t dest, const Transfer& transfer) {
  const std::vector<uint8_t>& image = images_[transfer.name];
  uint32_t offset = (transfer.next_block - 1) * kTftpBlockSize;
  uint32_t remaining = offset <= image.size() ? static_cast<uint32_t>(image.size()) - offset : 0;
  uint32_t chunk = std::min(remaining, kTftpBlockSize);
  station_.Send(api, dest, PacketKind::kTftpData, static_cast<uint16_t>(transfer.next_block),
                image.data() + offset, chunk);
  ++blocks_;
}

void BootServer::OnSignal(VirtAddr addr, ck::NativeCtx& ctx) {
  CkApi& api = ctx.api();
  PacketKind kind;
  uint8_t src;
  uint16_t arg;
  std::vector<uint8_t> body;
  if (!station_.Read(api, addr, &kind, &src, &arg, &body)) {
    return;
  }

  switch (kind) {
    case PacketKind::kRarpRequest:
      // RARP-style: "who serves me?" -- the reply's source station is the
      // answer.
      station_.Send(api, src, PacketKind::kRarpReply, 0, nullptr, 0);
      break;

    case PacketKind::kTftpRead: {
      std::string name(reinterpret_cast<const char*>(body.data()),
                       strnlen(reinterpret_cast<const char*>(body.data()), body.size()));
      if (images_.count(name) == 0) {
        const char* message = "no such image";
        station_.Send(api, src, PacketKind::kTftpError, 0, message,
                      static_cast<uint32_t>(strlen(message)));
        break;
      }
      Transfer transfer{name, 1};
      transfers_[src] = transfer;
      ++boots_;
      SendBlock(api, src, transfer);
      break;
    }

    case PacketKind::kTftpAck: {
      auto it = transfers_.find(src);
      if (it == transfers_.end() || it->second.next_block != arg) {
        break;  // stale/duplicate ack
      }
      const std::vector<uint8_t>& image = images_[it->second.name];
      // Block N carries bytes [(N-1)*512, N*512); a short (or empty) block
      // terminates, so the transfer is done once N*512 passes the image end.
      bool was_last = static_cast<uint64_t>(arg) * kTftpBlockSize > image.size();
      if (was_last) {
        transfers_.erase(it);
      } else {
        it->second.next_block = arg + 1;
        SendBlock(api, src, it->second);
      }
      break;
    }

    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// PromClient
// ---------------------------------------------------------------------------

CkStatus PromClient::Boot(CkApi& api, const std::string& image_name, BootDone done) {
  image_name_ = image_name;
  done_ = std::move(done);
  image_.clear();
  expected_block_ = 1;
  discovering_ = true;
  fetching_ = false;
  boot_complete_ = false;
  return station_.Send(api, kBroadcast, PacketKind::kRarpRequest, 0, nullptr, 0);
}

void PromClient::OnSignal(VirtAddr addr, ck::NativeCtx& ctx) {
  CkApi& api = ctx.api();
  PacketKind kind;
  uint8_t src;
  uint16_t arg;
  std::vector<uint8_t> body;
  if (!station_.Read(api, addr, &kind, &src, &arg, &body)) {
    return;
  }

  switch (kind) {
    case PacketKind::kRarpReply:
      if (!discovering_) {
        break;
      }
      discovering_ = false;
      fetching_ = true;
      server_ = src;
      station_.Send(api, server_, PacketKind::kTftpRead, 0, image_name_.c_str(),
                    static_cast<uint32_t>(image_name_.size() + 1));
      break;

    case PacketKind::kTftpData: {
      if (!fetching_ || arg != expected_block_) {
        break;  // duplicate or out-of-order block: re-ack the last good one
      }
      image_.insert(image_.end(), body.begin(), body.end());
      station_.Send(api, src, PacketKind::kTftpAck, arg, nullptr, 0);
      ++expected_block_;
      if (body.size() < kTftpBlockSize) {
        fetching_ = false;
        boot_complete_ = true;
        if (done_) {
          done_(image_, api);
        }
      }
      break;
    }

    case PacketKind::kTftpError:
      fetching_ = false;
      discovering_ = false;
      break;

    case PacketKind::kPeekReply: {
      if (peek_done_ && body.size() >= 4) {
        uint32_t value;
        std::memcpy(&value, body.data(), 4);
        auto done = std::move(peek_done_);
        peek_done_ = nullptr;
        done(value);
      }
      break;
    }

    default:
      break;
  }
}

CkStatus PromClient::Peek(CkApi& api, uint8_t server, PhysAddr addr,
                          std::function<void(uint32_t)> done) {
  peek_done_ = std::move(done);
  return station_.Send(api, server, PacketKind::kPeek, 0, &addr, 4);
}

CkStatus PromClient::Poke(CkApi& api, uint8_t server, PhysAddr addr, uint32_t value) {
  uint8_t body[8];
  std::memcpy(body, &addr, 4);
  std::memcpy(body + 4, &value, 4);
  return station_.Send(api, server, PacketKind::kPoke, 0, body, 8);
}

// ---------------------------------------------------------------------------
// DebugPort
// ---------------------------------------------------------------------------

void DebugPort::OnSignal(VirtAddr addr, ck::NativeCtx& ctx) {
  CkApi& api = ctx.api();
  PacketKind kind;
  uint8_t src;
  uint16_t arg;
  std::vector<uint8_t> body;
  if (!station_.Read(api, addr, &kind, &src, &arg, &body)) {
    return;
  }
  if (kind == PacketKind::kPeek && body.size() >= 4) {
    PhysAddr target;
    std::memcpy(&target, body.data(), 4);
    uint32_t value = memory_.Contains(target, 4) ? memory_.ReadWord(target & ~3u) : 0;
    ++peeks_;
    station_.Send(api, src, PacketKind::kPeekReply, 0, &value, 4);
  } else if (kind == PacketKind::kPoke && body.size() >= 8) {
    PhysAddr target;
    uint32_t value;
    std::memcpy(&target, body.data(), 4);
    std::memcpy(&value, body.data() + 4, 4);
    if (memory_.Contains(target, 4)) {
      memory_.WriteWord(target & ~3u, value);
    }
    ++pokes_;
    station_.Send(api, src, PacketKind::kPokeAck, 0, nullptr, 0);
  }
}

// ---------------------------------------------------------------------------
// Boot-image serialization
// ---------------------------------------------------------------------------

std::vector<uint8_t> SerializeProgram(const ckisa::Program& program) {
  std::vector<uint8_t> bytes(8 + program.words.size() * 4);
  uint32_t base = program.base;
  uint32_t count = static_cast<uint32_t>(program.words.size());
  std::memcpy(bytes.data(), &base, 4);
  std::memcpy(bytes.data() + 4, &count, 4);
  std::memcpy(bytes.data() + 8, program.words.data(), program.words.size() * 4);
  return bytes;
}

bool DeserializeProgram(const std::vector<uint8_t>& bytes, ckisa::Program* program) {
  if (bytes.size() < 8) {
    return false;
  }
  uint32_t base, count;
  std::memcpy(&base, bytes.data(), 4);
  std::memcpy(&count, bytes.data() + 4, 4);
  if (bytes.size() < 8 + static_cast<size_t>(count) * 4) {
    return false;
  }
  program->base = base;
  program->words.resize(count);
  std::memcpy(program->words.data(), bytes.data() + 8, static_cast<size_t>(count) * 4);
  return true;
}

}  // namespace ckprom
